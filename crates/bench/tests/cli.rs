//! End-to-end tests for the `run_all` binary: flag handling, registry
//! coverage, scenario loading, and the `--jobs` determinism contract.
//!
//! These spawn the compiled binary (via `CARGO_BIN_EXE_run_all`) so they
//! exercise argument parsing and exit codes exactly as a user would.

use ic_bench::registry::{registry, Experiment};
use ic_scenario::Scenario;
use std::process::Command;

fn run_all(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(args)
        .output()
        .expect("run_all binary spawns")
}

fn stdout_with_env(args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(args)
        .envs(envs.iter().map(|&(k, v)| (k, v)))
        .output()
        .expect("run_all binary spawns");
    assert!(
        out.status.success(),
        "run_all {:?} with {:?} failed: {}",
        args,
        envs,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn stdout_of(args: &[&str]) -> String {
    let out = run_all(args);
    assert!(
        out.status.success(),
        "run_all {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Strips the one nondeterministic field from a JSONL report.
fn normalize_wall_ms(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|line| {
            let mut s = line.to_string();
            if let Some(start) = s.find("\"wall_ms\":") {
                let tail = start + "\"wall_ms\":".len();
                let end = s[tail..]
                    .find([',', '}'])
                    .map(|i| tail + i)
                    .unwrap_or(s.len());
                s.replace_range(tail..end, "X");
            }
            s + "\n"
        })
        .collect()
}

#[test]
fn list_prints_every_registered_experiment() {
    let listing = stdout_of(&["--list"]);
    let listed: Vec<&str> = listing
        .lines()
        .map(|l| l.split_whitespace().next().expect("id column"))
        .collect();
    let expected: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(listed, expected, "--list must mirror registration order");
}

#[test]
fn only_filters_in_registration_order() {
    // Request out of registration order; output must come back in it.
    let out = stdout_of(&["--quick", "--json", "--only", "fig4,table2"]);
    let ids: Vec<String> = out
        .lines()
        .map(|l| {
            let start = l.find("\"id\":\"").expect("id field") + 6;
            let end = l[start..].find('"').expect("closing quote") + start;
            l[start..end].to_string()
        })
        .collect();
    assert_eq!(ids, ["table2", "fig4"]);
}

#[test]
fn unknown_id_fails_with_diagnostic() {
    let out = run_all(&["--only", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment id") && stderr.contains("nope"),
        "stderr was: {stderr}"
    );
}

#[test]
fn unreadable_scenario_fails_with_diagnostic() {
    let out = run_all(&["--scenario", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read scenario"),
        "stderr was: {stderr}"
    );
}

#[test]
fn paper_scenario_file_reproduces_the_default_run() {
    let dir = std::env::temp_dir().join(format!("ic-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("paper.json");
    std::fs::write(&path, Scenario::paper().to_json()).expect("write scenario");

    let from_file = stdout_of(&["--quick", "--scenario", path.to_str().expect("utf-8 path")]);
    let default = stdout_of(&["--quick"]);
    assert_eq!(from_file, default, "paper scenario file must be a no-op");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn intra_experiment_worker_count_does_not_change_the_report() {
    // The full determinism contract of the ic-par conversion: the outer
    // experiment fan-out (--jobs) and the inner sweep scatter-gather
    // (IC_PAR_WORKERS) both vary, and the records stay byte-identical
    // modulo wall_ms. Restricted to the two experiments that sweep
    // policies through run_batch, to keep the differential fast.
    let only = "fig8,table11";
    let serial = stdout_with_env(
        &["--quick", "--json", "--only", only, "--jobs", "1"],
        &[("IC_PAR_WORKERS", "1")],
    );
    for (jobs, workers) in [("1", "4"), ("4", "2"), ("3", "5")] {
        let got = stdout_with_env(
            &["--quick", "--json", "--only", only, "--jobs", jobs],
            &[("IC_PAR_WORKERS", workers)],
        );
        assert_eq!(
            normalize_wall_ms(&serial),
            normalize_wall_ms(&got),
            "--jobs {jobs} IC_PAR_WORKERS={workers} must match the serial report"
        );
    }
}

#[test]
fn jobs_do_not_change_the_report() {
    let serial = stdout_of(&["--quick", "--json", "--jobs", "1"]);
    let parallel = stdout_of(&["--quick", "--json", "--jobs", "8"]);
    assert_eq!(
        normalize_wall_ms(&serial),
        normalize_wall_ms(&parallel),
        "--jobs 8 must emit byte-identical records (modulo wall_ms)"
    );
    assert_eq!(serial.lines().count(), registry().len());
}
