//! Microbenchmarks for the hot paths of the workspace: the
//! discrete-event engine, the M/G/k simulation, the auto-scaler control
//! step, VM placement, and the analytic models the governor evaluates on
//! every decision.
//!
//! Criterion is unavailable in the hermetic build, so this is a plain
//! `harness = false` binary with a small best-of-N timing loop. Run with
//! `cargo bench -p ic-bench`; each line reports the best per-iteration
//! time over several batches, which is stable enough to catch order-of-
//! magnitude regressions in CI logs.

use ic_autoscale::asc::AutoScaler;
use ic_autoscale::policy::{AscConfig, Policy};
use ic_cluster::cluster::Cluster;
use ic_cluster::placement::{Oversubscription, PlacementPolicy};
use ic_cluster::server::ServerSpec;
use ic_cluster::vm::VmSpec;
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::stability::StabilityModel;
use ic_sim::engine::Engine;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;
use ic_workloads::mgk::ClientServerSim;
use ic_workloads::queueing::MgkQueue;
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` in `batches` batches of `iters` iterations and prints the
/// best mean per-iteration time (the least-perturbed batch).
fn bench<T>(name: &str, batches: u32, iters: u32, mut f: impl FnMut() -> T) {
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_iter);
    }
    let (value, unit) = if best >= 1e-3 {
        (best * 1e3, "ms")
    } else if best >= 1e-6 {
        (best * 1e6, "us")
    } else {
        (best * 1e9, "ns")
    };
    println!("{name:<28} {value:>10.3} {unit}/iter");
}

fn bench_engine() {
    bench("engine_100k_events", 5, 3, || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..100_000u64 {
            engine.schedule(SimTime::from_nanos(i * 13 % 1_000_000), |s, _| *s += 1);
        }
        let mut count = 0u64;
        engine.run(&mut count);
        count
    });
}

fn bench_mgk_sim() {
    bench("mgk_sim_10s_at_2000qps", 5, 3, || {
        let mut sim = ClientServerSim::new(1, 0.0028, 2.0, 4, 0.1);
        for _ in 0..4 {
            sim.add_vm();
        }
        sim.set_qps(2000.0);
        sim.advance_to(SimTime::from_secs(10));
        sim.completed_requests()
    });
}

fn bench_autoscaler_step() {
    let mut sim = ClientServerSim::new(2, 0.0028, 2.0, 4, 0.1);
    for _ in 0..3 {
        sim.add_vm();
    }
    sim.set_qps(1500.0);
    let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
    let mut t = SimTime::ZERO;
    bench("autoscaler_control_step", 5, 200, || {
        t += SimDuration::from_secs(3);
        sim.advance_to(t);
        asc.step(&mut sim)
    });
}

fn bench_placement() {
    bench("best_fit_place_200_vms", 5, 20, || {
        let mut cluster = Cluster::new(
            vec![ServerSpec::open_compute(); 50],
            PlacementPolicy::BestFit,
            Oversubscription::ratio(1.2),
        );
        for _ in 0..200 {
            let _ = cluster.create_vm(VmSpec::new(4, 16.0));
        }
        cluster.vm_count()
    });
}

fn bench_governor() {
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    bench("governor_decide", 5, 500, || {
        governor.decide(Frequency::from_ghz(3.3), 305.0)
    });
}

fn bench_models() {
    let model = CompositeLifetimeModel::fitted_5nm();
    let cond = OperatingConditions::new(0.98, 74.0, 50.0);
    bench("lifetime_eval", 5, 10_000, || model.lifetime_years(&cond));
    bench("mgk_p95_quantile", 5, 2_000, || {
        MgkQueue::new(16, 1230.0, 0.01, 1.5).sojourn_quantile(0.95)
    });
}

fn main() {
    println!("kernel microbenchmarks (best of 5 batches)\n");
    bench_engine();
    bench_mgk_sim();
    bench_autoscaler_step();
    bench_placement();
    bench_governor();
    bench_models();
}
