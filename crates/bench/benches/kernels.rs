//! Microbenchmarks for the hot paths of the workspace: the
//! discrete-event engine, the M/G/k simulation, the auto-scaler control
//! step, VM placement, and the analytic models the governor evaluates on
//! every decision.
//!
//! Criterion is unavailable in the hermetic build, so this is a plain
//! `harness = false` binary with a small best-of-N timing loop. Run with
//! `cargo bench -p ic-bench`; each line reports the best per-iteration
//! time over several batches, which is stable enough to catch order-of-
//! magnitude regressions in CI logs.
//!
//! # Perf trajectory (`--json`)
//!
//! `cargo bench -p ic-bench --bench kernels -- --json [--quick]` prints a
//! single machine-readable JSON object to stdout — the format checked in
//! as `BENCH_sim.json` at the repo root and compared by the CI
//! `bench-smoke` job. It reports raw-engine and M/G/k events/sec (the
//! latter under both sampler stream versions — `mgk_events_per_sec` on
//! the frozen v1 stream, `mgk_events_per_sec_v2` on the ziggurat v2
//! stream — plus the per-draw `normal_ns_per_sample_{v1,v2}` costs), the
//! steady-state allocations per event (counted by this binary's global
//! allocator — expected to be exactly 0 on the inline event path), the
//! boxed-event count, the end-to-end wall time of the `table11`
//! experiment from the registry (three policies through the `ic-par`
//! scatter-gather pool), the throughput of a three-policy sweep
//! (runs/sec), the control-plane scheduling rate of the composed
//! experiment under both streams (controller ticks/sec,
//! `composed_ctrl_ticks_per_sec{,_v2}`), the fleet-scale counterparts at
//! 10 000 power domains (`fleet10k_ctrl_ticks_per_sec`, plus the
//! per-VM telemetry-snapshot refill cost `fleet_snapshot_ns_per_vm` —
//! the key that would regress if the snapshot path went O(fleet)),
//! the chaos experiment's fault-injection event throughput
//! (`chaos_events_per_sec` — B2 and OC3 fleets end-to-end, gating the
//! hazard/burst bookkeeping on the event loop),
//! the governor's steady-state cache hit rate, and the worker count
//! the pool resolved (`IC_PAR_WORKERS` or the machine's parallelism —
//! wall-clock numbers only speed up with real cores).
//! In `--quick` mode (what CI gates on) every key is the median of
//! three full measurement passes, so a single noisy runner sample
//! cannot move the gate.
//! Floats are encoded with [`ic_obs::json::write_f64`] so equal
//! measurements encode identically.

use ic_autoscale::asc::AutoScaler;
use ic_autoscale::policy::{AscConfig, Policy};
use ic_autoscale::runner::{run_batch, RunnerConfig};
use ic_bench::experiments::{chaos, fleet_scale};
use ic_bench::registry::{run_one, Mode};
use ic_cluster::cluster::Cluster;
use ic_cluster::placement::{Oversubscription, PlacementPolicy};
use ic_cluster::server::ServerSpec;
use ic_cluster::vm::VmSpec;
use ic_controlplane::{FleetWorld, World};
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_obs::json::{write_escaped, write_f64};
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::stability::StabilityModel;
use ic_scenario::Scenario;
use ic_sim::engine::Engine;
use ic_sim::rng::{SimRng, StreamVersion};
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;
use ic_workloads::mgk::ClientServerSim;
use ic_workloads::queueing::MgkQueue;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation made by this binary. Lives only in the
/// bench target — the library crates never pay for the counter — and
/// backs the allocations-per-event measurement in the JSON report.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` in `batches` batches of `iters` iterations and returns the
/// best mean per-iteration time in seconds (the least-perturbed batch).
fn best_of<T>(batches: u32, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_iter);
    }
    best
}

/// Prints one human-readable result line.
fn report(name: &str, best: f64) {
    let (value, unit) = if best >= 1e-3 {
        (best * 1e3, "ms")
    } else if best >= 1e-6 {
        (best * 1e6, "us")
    } else {
        (best * 1e9, "ns")
    };
    println!("{name:<28} {value:>10.3} {unit}/iter");
}

const ENGINE_EVENTS: u64 = 100_000;

/// The raw-engine microbench: build a fresh engine, bulk-schedule 100k
/// trivial events, drain. Returns best seconds per iteration.
fn engine_iter_secs(batches: u32) -> f64 {
    best_of(batches, 3, || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..ENGINE_EVENTS {
            engine.schedule(SimTime::from_nanos(i * 13 % 1_000_000), |s, _| *s += 1);
        }
        let mut count = 0u64;
        engine.run(&mut count);
        count
    })
}

/// Steady-state engine throughput and allocation rate: one long-lived
/// engine pumps repeated 100k-event waves, so every queue buffer is warm.
/// Returns `(events_per_sec, allocations_per_event)`; the latter is
/// expected to be exactly 0 — every closure here fits the inline event
/// cell and the calendar queue reuses its buffers between epochs.
fn engine_steady_state(waves: u32) -> (f64, f64) {
    let mut engine: Engine<u64> = Engine::new();
    let mut count = 0u64;
    let wave = |engine: &mut Engine<u64>, count: &mut u64| {
        let base = engine.now() + SimDuration::from_nanos(1);
        for i in 0..ENGINE_EVENTS {
            engine.schedule(
                base + SimDuration::from_nanos(i * 13 % 1_000_000),
                |s, _| *s += 1,
            );
        }
        engine.run(count);
    };
    for _ in 0..3 {
        wave(&mut engine, &mut count);
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..waves {
        wave(&mut engine, &mut count);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    black_box(count);
    let events = (waves as u64 * ENGINE_EVENTS) as f64;
    (events / elapsed, allocs as f64 / events)
}

/// Times [`SimRng::standard_normal`] under the given stream version and
/// returns nanoseconds per sample. v1 is the frozen Box-Muller pair
/// path the historical records replay; v2 is the 256-layer ziggurat,
/// whose rectangle branch (~98.8% of draws) is log/exp-free — the
/// sampler the `normal_ns_per_sample_v2` ceiling in `check` gates.
fn normal_ns_per_sample(batches: u32, version: StreamVersion) -> f64 {
    const DRAWS: u32 = 100_000;
    let mut rng = SimRng::seed_versioned(1, version);
    let best = best_of(batches, 3, || {
        let mut acc = 0.0;
        for _ in 0..DRAWS {
            acc += rng.standard_normal();
        }
        acc
    });
    best / DRAWS as f64 * 1e9
}

/// The M/G/k end-to-end bench. Returns `(best_secs, engine_events,
/// boxed_events)` for one simulated run of `sim_secs` at 2000 QPS on
/// 4 VMs under the given sampler stream version.
fn mgk_measure(batches: u32, sim_secs: u64, version: StreamVersion) -> (f64, u64, u64) {
    let mut events = 0u64;
    let mut boxed = 0u64;
    let best = best_of(batches, 3, || {
        let mut sim = ClientServerSim::with_stream_version(1, 0.0028, 2.0, 4, 0.1, version);
        for _ in 0..4 {
            sim.add_vm();
        }
        sim.set_qps(2000.0);
        sim.advance_to(SimTime::from_secs(sim_secs));
        events = sim.events_processed();
        boxed = sim.boxed_events();
        sim.completed_requests()
    });
    (best, events, boxed)
}

fn bench_autoscaler_step() {
    let mut sim = ClientServerSim::new(2, 0.0028, 2.0, 4, 0.1);
    for _ in 0..3 {
        sim.add_vm();
    }
    sim.set_qps(1500.0);
    let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
    let mut t = SimTime::ZERO;
    report(
        "autoscaler_control_step",
        best_of(5, 200, || {
            t += SimDuration::from_secs(3);
            sim.advance_to(t);
            asc.step(&mut sim)
        }),
    );
}

fn bench_placement() {
    report(
        "best_fit_place_200_vms",
        best_of(5, 20, || {
            let mut cluster = Cluster::new(
                vec![ServerSpec::open_compute(); 50],
                PlacementPolicy::BestFit,
                Oversubscription::ratio(1.2),
            );
            for _ in 0..200 {
                let _ = cluster.create_vm(SimTime::ZERO, VmSpec::new(4, 16.0));
            }
            cluster.vm_count()
        }),
    );
}

fn bench_governor() {
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    report(
        "governor_decide",
        best_of(5, 500, || governor.decide(Frequency::from_ghz(3.3), 305.0)),
    );
}

fn bench_models() {
    let model = CompositeLifetimeModel::fitted_5nm();
    let cond = OperatingConditions::new(0.98, 74.0, 50.0);
    report(
        "lifetime_eval",
        best_of(5, 10_000, || model.lifetime_years(&cond)),
    );
    report(
        "mgk_p95_quantile",
        best_of(5, 2_000, || {
            MgkQueue::new(16, 1230.0, 0.01, 1.5).sojourn_quantile(0.95)
        }),
    );
}

/// Times a three-policy scatter-gather sweep (the Figure 8 scenario
/// through [`run_batch`]) and returns completed runs per second.
fn sweep_runs_per_sec(quick: bool) -> f64 {
    let mut config = RunnerConfig::paper();
    config.schedule = vec![(0.0, 500.0), (300.0, if quick { 900.0 } else { 1000.0 })];
    config.tail_s = 300.0;
    let tasks: Vec<_> = [Policy::Baseline, Policy::OcE, Policy::OcA]
        .into_iter()
        .map(|policy| (config.clone(), policy, 42))
        .collect();
    let n = tasks.len() as f64;
    let start = Instant::now();
    black_box(run_batch(tasks));
    n / start.elapsed().as_secs_f64()
}

/// Times a composed control-plane experiment (`composed` on the v1
/// stream, `composed_v2` on the ziggurat stream) end-to-end and returns
/// controller ticks per wall second — the gate on the [`ic_controlplane`]
/// scheduler's overhead (telemetry assembly, action dispatch, and the
/// tick events themselves, on top of the workload sim). Like every
/// other kernel it keeps the least-perturbed of three runs; a single
/// ~60 ms sample is at the mercy of scheduler noise.
fn composed_ctrl_ticks_per_sec(quick: bool, id: &str) -> f64 {
    let mode = if quick { Mode::Quick } else { Mode::Full };
    let mut best = 0.0f64;
    for _ in 0..3 {
        let record =
            run_one(id, &Scenario::paper(), mode).expect("composed variants are registered");
        let ticks = record
            .metrics
            .iter()
            .find(|m| m.name == "cp_ticks")
            .map(|m| m.measured)
            .expect("composed reports cp_ticks");
        best = best.max(ticks / (record.wall_ms / 1e3));
    }
    best
}

/// Times the persistent telemetry-snapshot refill on a 10 000-domain
/// fleet carrying 64 serving VMs, in nanoseconds per VM row. At steady
/// state the power and cluster sections are clean (kept current at
/// actuation time), so the per-tick cost must track the active VMs
/// (64), not the fleet (10 000) — this key regressing is exactly what
/// an accidental O(fleet) snapshot rebuild looks like.
fn fleet_snapshot_ns_per_vm(batches: u32) -> f64 {
    const VMS: usize = 64;
    let mut config = fleet_scale::fleet_config(10_000, true);
    config.initial_vms = VMS;
    let mut world = FleetWorld::new(config);
    let t = SimTime::from_secs(1);
    // The first call computes the cluster section (dirty at
    // construction); the timed calls hit the steady-state path.
    let _ = world.telemetry(t);
    let best = best_of(batches, 1_000, || world.telemetry(t).vms.len());
    best / VMS as f64 * 1e9
}

/// Times the fleet-scale experiment's 10 000-domain size end-to-end
/// and returns controller ticks per wall second. The composed
/// experiment runs the same control loops at 2 domains; per-tick work
/// is O(dirty), so a hundredfold fleet must stay within the same
/// decade rather than dropping 100x.
fn fleet10k_ctrl_ticks_per_sec(quick: bool) -> f64 {
    let (ticks, secs) = fleet_scale::timed_ctrl_ticks(10_000, quick);
    ticks as f64 / secs
}

/// Times the chaos experiment (wear-coupled fault injection, B2 vs OC3
/// fleets with degradation controllers) end-to-end and returns engine
/// events per wall second across both fleets. This is the gate on the
/// fault-injection path: hazard inversion, burst accrual, and the
/// degradation/failover controllers all ride the event loop, so this
/// key regressing means fault bookkeeping went superlinear.
fn chaos_events_per_sec(quick: bool) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let (events, metrics) = chaos::chaos_record(StreamVersion::V1, quick);
        let secs = start.elapsed().as_secs_f64();
        black_box(metrics);
        best = best.max(events as f64 / secs);
    }
    best
}

/// Exercises the governor's decision loop over a grid of power grants
/// and reports the steady-state memo table's hit rate — the fraction of
/// power/temperature fixed points served without re-solving.
fn governor_cache_hit_rate() -> f64 {
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    for grant in [180.0, 205.0, 255.0, 305.0, 400.0] {
        for _ in 0..40 {
            black_box(governor.decide(Frequency::from_ghz(3.3), grant));
        }
    }
    governor.cache().hit_rate()
}

/// Collects the perf-trajectory metrics (the `BENCH_sim.json`
/// payload). Quick mode takes the per-key median of three full
/// measurement passes — CI gates on quick numbers, and one descheduled
/// runner must not be able to move them.
fn trajectory(quick: bool) -> Vec<(&'static str, f64)> {
    if !quick {
        return trajectory_once(false);
    }
    let first = trajectory_once(true);
    let second = trajectory_once(true);
    let third = trajectory_once(true);
    first
        .iter()
        .zip(&second)
        .zip(&third)
        .map(|((&(key, a), &(_, b)), &(_, c))| {
            let mut reps = [a, b, c];
            reps.sort_by(f64::total_cmp);
            (key, reps[1])
        })
        .collect()
}

/// One full measurement pass over every trajectory key.
fn trajectory_once(quick: bool) -> Vec<(&'static str, f64)> {
    let batches = if quick { 3 } else { 5 };
    let engine_best = engine_iter_secs(batches);
    let (steady_eps, allocs_per_event) = engine_steady_state(if quick { 5 } else { 15 });
    let sim_secs = if quick { 3 } else { 10 };
    let (mgk_best, mgk_events, mgk_boxed) = mgk_measure(batches, sim_secs, StreamVersion::V1);
    let (mgk_best_v2, mgk_events_v2, _) = mgk_measure(batches, sim_secs, StreamVersion::V2);
    let mode = if quick { Mode::Quick } else { Mode::Full };
    let table11 = run_one("table11", &Scenario::paper(), mode).expect("table11 is registered");
    let sweep_rps = sweep_runs_per_sec(quick);
    vec![
        ("engine_events_per_sec", ENGINE_EVENTS as f64 / engine_best),
        ("engine_ms_per_100k_events", engine_best * 1e3),
        ("engine_steady_events_per_sec", steady_eps),
        ("engine_steady_allocs_per_event", allocs_per_event),
        (
            "normal_ns_per_sample_v1",
            normal_ns_per_sample(batches, StreamVersion::V1),
        ),
        (
            "normal_ns_per_sample_v2",
            normal_ns_per_sample(batches, StreamVersion::V2),
        ),
        ("mgk_events_per_sec", mgk_events as f64 / mgk_best),
        ("mgk_events_per_sec_v2", mgk_events_v2 as f64 / mgk_best_v2),
        ("mgk_boxed_events", mgk_boxed as f64),
        ("table11_wall_ms", table11.wall_ms),
        ("sweep_runs_per_sec", sweep_rps),
        (
            "composed_ctrl_ticks_per_sec",
            composed_ctrl_ticks_per_sec(quick, "composed"),
        ),
        (
            "composed_ctrl_ticks_per_sec_v2",
            composed_ctrl_ticks_per_sec(quick, "composed_v2"),
        ),
        (
            "fleet_snapshot_ns_per_vm",
            fleet_snapshot_ns_per_vm(batches),
        ),
        (
            "fleet10k_ctrl_ticks_per_sec",
            fleet10k_ctrl_ticks_per_sec(quick),
        ),
        ("chaos_events_per_sec", chaos_events_per_sec(quick)),
        ("steady_cache_hit_rate", governor_cache_hit_rate()),
        ("par_workers", ic_par::pool().workers() as f64),
    ]
}

/// Encodes the trajectory metrics as one deterministic-layout JSON
/// object (only the measurements themselves vary run to run).
fn trajectory_json(quick: bool, metrics: &[(&'static str, f64)]) -> String {
    let mut out = String::from("{\"schema\":\"ic-bench/kernels/v6\",\"mode\":");
    write_escaped(if quick { "quick" } else { "full" }, &mut out);
    for (key, value) in metrics {
        out.push(',');
        write_escaped(key, &mut out);
        out.push(':');
        write_f64(*value, &mut out);
    }
    out.push('}');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");

    if json {
        // JSON mode prints nothing but the object, so the output can be
        // redirected straight into BENCH_sim.json.
        let metrics = trajectory(quick);
        println!("{}", trajectory_json(quick, &metrics));
        return;
    }

    println!("kernel microbenchmarks (best of 5 batches)\n");
    report("engine_100k_events", engine_iter_secs(5));
    let (steady_eps, allocs_per_event) = engine_steady_state(15);
    println!(
        "engine_steady_state          {:>10.3} Mev/s  ({allocs_per_event} allocs/event)",
        steady_eps / 1e6
    );
    println!(
        "standard_normal_v1           {:>10.3} ns/sample",
        normal_ns_per_sample(5, StreamVersion::V1)
    );
    println!(
        "standard_normal_v2           {:>10.3} ns/sample",
        normal_ns_per_sample(5, StreamVersion::V2)
    );
    let (mgk_best, mgk_events, mgk_boxed) = mgk_measure(5, 10, StreamVersion::V1);
    report("mgk_sim_10s_at_2000qps", mgk_best);
    println!(
        "mgk_throughput               {:>10.3} Mev/s  ({mgk_boxed} boxed of {mgk_events} events)",
        mgk_events as f64 / mgk_best / 1e6
    );
    let (mgk_best_v2, mgk_events_v2, mgk_boxed_v2) = mgk_measure(5, 10, StreamVersion::V2);
    println!(
        "mgk_throughput_v2            {:>10.3} Mev/s  ({mgk_boxed_v2} boxed of {mgk_events_v2} events)",
        mgk_events_v2 as f64 / mgk_best_v2 / 1e6
    );
    bench_autoscaler_step();
    bench_placement();
    bench_governor();
    bench_models();
    println!(
        "sweep_throughput             {:>10.3} runs/s ({} pool workers)",
        sweep_runs_per_sec(true),
        ic_par::pool().workers()
    );
    println!(
        "composed_ctrl_ticks          {:>10.3} ticks/s",
        composed_ctrl_ticks_per_sec(true, "composed")
    );
    println!(
        "composed_ctrl_ticks_v2       {:>10.3} ticks/s",
        composed_ctrl_ticks_per_sec(true, "composed_v2")
    );
    println!(
        "fleet_snapshot               {:>10.3} ns/vm   (10k domains, 64 vms)",
        fleet_snapshot_ns_per_vm(5)
    );
    println!(
        "fleet10k_ctrl_ticks          {:>10.3} ticks/s",
        fleet10k_ctrl_ticks_per_sec(true)
    );
    println!(
        "chaos_events                 {:>10.3} Mev/s  (B2 + OC3 fleets)",
        chaos_events_per_sec(true) / 1e6
    );
    println!(
        "steady_cache_hit_rate        {:>10.3}",
        governor_cache_hit_rate()
    );
}
