//! Criterion microbenchmarks for the hot paths of the workspace: the
//! discrete-event engine, the M/G/k simulation, the auto-scaler control
//! step, VM placement, and the analytic models the governor evaluates on
//! every decision.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ic_cluster::cluster::Cluster;
use ic_cluster::placement::{Oversubscription, PlacementPolicy};
use ic_cluster::server::ServerSpec;
use ic_cluster::vm::VmSpec;
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::stability::StabilityModel;
use ic_sim::engine::Engine;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;
use ic_workloads::mgk::ClientServerSim;
use ic_workloads::queueing::MgkQueue;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter_batched(
            || {
                let mut engine: Engine<u64> = Engine::new();
                for i in 0..100_000u64 {
                    engine.schedule(SimTime::from_nanos(i * 13 % 1_000_000), |s, _| *s += 1);
                }
                engine
            },
            |mut engine| {
                let mut count = 0u64;
                engine.run(&mut count);
                count
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mgk_sim(c: &mut Criterion) {
    c.bench_function("mgk_sim_10s_at_2000qps", |b| {
        b.iter(|| {
            let mut sim = ClientServerSim::new(1, 0.0028, 2.0, 4, 0.1);
            for _ in 0..4 {
                sim.add_vm();
            }
            sim.set_qps(2000.0);
            sim.advance_to(SimTime::from_secs(10));
            sim.completed_requests()
        })
    });
}

fn bench_autoscaler_step(c: &mut Criterion) {
    use ic_autoscale::asc::AutoScaler;
    use ic_autoscale::policy::{AscConfig, Policy};
    c.bench_function("autoscaler_control_step", |b| {
        let mut sim = ClientServerSim::new(2, 0.0028, 2.0, 4, 0.1);
        for _ in 0..3 {
            sim.add_vm();
        }
        sim.set_qps(1500.0);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_secs(3);
            sim.advance_to(t);
            asc.step(&mut sim)
        })
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("best_fit_place_200_vms", |b| {
        b.iter_batched(
            || {
                Cluster::new(
                    vec![ServerSpec::open_compute(); 50],
                    PlacementPolicy::BestFit,
                    Oversubscription::ratio(1.2),
                )
            },
            |mut cluster| {
                for _ in 0..200 {
                    let _ = cluster.create_vm(VmSpec::new(4, 16.0));
                }
                cluster.vm_count()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_governor(c: &mut Criterion) {
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    c.bench_function("governor_decide", |b| {
        b.iter(|| governor.decide(Frequency::from_ghz(3.3), 305.0))
    });
}

fn bench_models(c: &mut Criterion) {
    let model = CompositeLifetimeModel::fitted_5nm();
    let cond = OperatingConditions::new(0.98, 74.0, 50.0);
    c.bench_function("lifetime_eval", |b| b.iter(|| model.lifetime_years(&cond)));
    c.bench_function("mgk_p95_quantile", |b| {
        b.iter(|| MgkQueue::new(16, 1230.0, 0.01, 1.5).sojourn_quantile(0.95))
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_mgk_sim,
    bench_autoscaler_step,
    bench_placement,
    bench_governor,
    bench_models
);
criterion_main!(benches);
