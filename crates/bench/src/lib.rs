//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each experiment lives in [`experiments`] as a function returning the
//! rendered rows/series; the `src/bin/*` binaries are thin wrappers, and
//! `run-all` executes everything in paper order (writing the combined
//! report that `EXPERIMENTS.md` is checked against).
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_cooling` | Table I — cooling-technology comparison |
//! | `table2_fluids` | Table II — dielectric fluid properties |
//! | `table3_turbo` | Table III — max turbo, air vs 2PIC |
//! | `table4_failure_modes` | Table IV — failure-mode dependencies |
//! | `table5_lifetime` | Table V — lifetime projections |
//! | `table6_tco` | Table VI — TCO deltas |
//! | `table7_cpu_configs` | Table VII — CPU frequency configurations |
//! | `table8_gpu_configs` | Table VIII — GPU configurations |
//! | `table9_apps` | Table IX — application suite |
//! | `table11_autoscaler` | Table XI — full auto-scaler comparison |
//! | `fig4_domains` | Figure 4 — operating domains |
//! | `fig5_usecases` | Figure 5 — frequency bands and packing |
//! | `fig6_buffers` | Figure 6 — static vs virtual buffers |
//! | `fig7_capacity` | Figure 7 — capacity-crisis bridging |
//! | `fig8_scaleup` | Figure 8 — scale-up-then-out timelines |
//! | `fig9_cloud_workloads` | Figure 9 — per-app overclocking response |
//! | `fig10_stream` | Figure 10 — STREAM bandwidth |
//! | `fig11_gpu` | Figure 11 — VGG training under GPU overclocking |
//! | `fig12_sql_oversub` | Figure 12 — SQL P95 vs pcores |
//! | `fig13_mixed_oversub` | Figure 13 / Table X — mixed oversubscription |
//! | `fig14_architecture` | Figure 14 — ASC components and cadences |
//! | `fig15_validation` | Figure 15 — Equation 1 validation trace |
//! | `fig16_utilization` | Figure 16 — policy utilization traces |
//! | `composed_controlplane` | Composed control plane — ASC + capping + governor + failover |

pub mod check;
pub mod experiments;
pub mod registry;
pub mod report;

/// Formats a floating value with a fixed width for table output.
pub fn cell(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Renders a header followed by aligned rows.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            "demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2.50".into()],
            ],
        );
        assert!(out.contains("== demo =="));
        assert!(out.contains("longer"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(1.2345, 2), "1.23");
        assert_eq!(cell(10.0, 0), "10");
    }
}
