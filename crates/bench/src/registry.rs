//! The experiment registry: every table and figure as a uniform,
//! individually-addressable unit.
//!
//! Each entry pairs a stable id (`"table1"` ... `"fig16"`) with a render
//! function (the human-readable table/series) and, where the paper
//! reports numbers, a structured metrics function. The registry is the
//! single source of the paper ordering: both the text report and the
//! JSONL report walk it front to back, and the `--jobs` fan-out
//! reassembles results in registration order so parallel runs are
//! byte-identical to serial ones (modulo `wall_ms`).

use crate::experiments::{chaos, composed, figures, fleet_scale, tables};
use crate::report::{ExperimentRecord, Metric};
use ic_obs::flight::FlightHandle;
use ic_obs::trace::TraceLevel;
use ic_par::ParPool;
use ic_scenario::Scenario;
use ic_sim::rng::StreamVersion;
use std::fmt;
use std::time::Instant;

/// Whether simulation-backed experiments run their shortened or full
/// (paper-exact) schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Shortened schedules for fast runs (`run_all --quick`).
    Quick,
    /// The paper's full schedules.
    Full,
}

impl Mode {
    /// `true` for [`Mode::Quick`].
    pub fn is_quick(self) -> bool {
        matches!(self, Mode::Quick)
    }
}

/// One runnable experiment: an id, a title, and the two output paths
/// (rendered text and machine-readable record).
pub trait Experiment: Sync {
    /// Stable identifier in paper order (`"table1"` ... `"fig16"`).
    fn id(&self) -> &'static str;

    /// Human-readable title, as it appears in the JSONL records and
    /// `run_all --list`.
    fn title(&self) -> &'static str;

    /// Renders the human-readable table/series.
    fn render(&self, scenario: &Scenario, mode: Mode) -> String;

    /// Produces the simulation-event count and structured metrics for
    /// the machine-readable record. Analytic experiments default to
    /// timing the render and reporting its line count.
    fn measure(&self, scenario: &Scenario, mode: Mode) -> (u64, Vec<Metric>) {
        let out = self.render(scenario, mode);
        (
            0,
            vec![Metric::new(
                "output_lines",
                "count",
                out.lines().count() as f64,
            )],
        )
    }

    /// Runs the experiment and assembles its record. `wall_ms` is the
    /// only non-deterministic field.
    fn run(&self, scenario: &Scenario, mode: Mode) -> ExperimentRecord {
        let started = Instant::now();
        let (sim_events, metrics) = self.measure(scenario, mode);
        ExperimentRecord {
            id: self.id(),
            title: self.title().to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            sim_events,
            metrics,
        }
    }

    /// [`measure`](Self::measure) with a flight recorder available.
    /// Experiments without flight instrumentation fall through to the
    /// plain measurement; either way the returned record must be
    /// byte-identical to the untraced one (tracing is a side channel).
    fn measure_traced(
        &self,
        scenario: &Scenario,
        mode: Mode,
        flight: &FlightHandle,
    ) -> (u64, Vec<Metric>) {
        let _ = flight;
        self.measure(scenario, mode)
    }

    /// [`run`](Self::run) with flight recording: wraps the measurement
    /// in a `bench`/`<id>` span closing at the recorder's latest
    /// simulation time, so every run's internal spans nest under one
    /// experiment-level span.
    fn run_traced(
        &self,
        scenario: &Scenario,
        mode: Mode,
        flight: &FlightHandle,
    ) -> ExperimentRecord {
        let started = Instant::now();
        let token = flight
            .borrow_mut()
            .open("bench", self.id(), TraceLevel::Info, vec![]);
        let (sim_events, metrics) = self.measure_traced(scenario, mode, flight);
        if let Some(token) = token {
            let mut f = flight.borrow_mut();
            let end = f.max_end();
            f.close_at(token, end);
        }
        ExperimentRecord {
            id: self.id(),
            title: self.title().to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            sim_events,
            metrics,
        }
    }
}

/// A metrics hook: simulation-event count plus paper-anchored metrics.
type MetricsFn = fn(&Scenario, Mode) -> (u64, Vec<Metric>);

/// A metrics hook that also records spans into a flight recorder. The
/// returned numbers must be byte-identical to the plain [`MetricsFn`]'s.
type TracedMetricsFn = fn(&Scenario, Mode, &FlightHandle) -> (u64, Vec<Metric>);

/// A registry entry built from plain function pointers.
#[derive(Debug)]
pub struct FnExperiment {
    id: &'static str,
    title: &'static str,
    render: fn(&Scenario, Mode) -> String,
    /// `Some` for experiments with paper-anchored structured metrics;
    /// `None` falls back to the line-count default.
    metrics: Option<MetricsFn>,
    /// `Some` for simulation-backed experiments instrumented for the
    /// flight recorder; `None` falls back to the untraced measurement.
    traced: Option<TracedMetricsFn>,
}

impl Experiment for FnExperiment {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn render(&self, scenario: &Scenario, mode: Mode) -> String {
        (self.render)(scenario, mode)
    }
    fn measure(&self, scenario: &Scenario, mode: Mode) -> (u64, Vec<Metric>) {
        match self.metrics {
            Some(f) => f(scenario, mode),
            None => {
                let out = self.render(scenario, mode);
                (
                    0,
                    vec![Metric::new(
                        "output_lines",
                        "count",
                        out.lines().count() as f64,
                    )],
                )
            }
        }
    }
    fn measure_traced(
        &self,
        scenario: &Scenario,
        mode: Mode,
        flight: &FlightHandle,
    ) -> (u64, Vec<Metric>) {
        match self.traced {
            Some(f) => f(scenario, mode, flight),
            None => self.measure(scenario, mode),
        }
    }
}

/// All experiments in paper order, plus the composed control-plane
/// run (not a paper artifact — the reproduction's own end-to-end
/// demonstration, so it sits last).
static REGISTRY: [FnExperiment; 27] = [
    FnExperiment {
        id: "table1",
        title: "Table I: cooling technologies",
        render: |_, _| tables::table1(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table2",
        title: "Table II: dielectric fluids",
        render: |s, _| tables::table2(s),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table3",
        title: "Table III: max turbo, air vs 2PIC",
        render: |s, _| tables::table3(s),
        metrics: Some(|s, _| (0, tables::table3_metrics(s))),
        traced: None,
    },
    FnExperiment {
        id: "table4",
        title: "Table IV: failure-mode dependencies",
        render: |s, _| tables::table4(s),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table5",
        title: "Table V: projected lifetime",
        render: |s, _| tables::table5(s),
        metrics: Some(|s, _| (0, tables::table5_metrics(s))),
        traced: None,
    },
    FnExperiment {
        id: "table6",
        title: "Table VI: TCO analysis",
        render: |_, _| tables::table6(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table7",
        title: "Table VII: CPU frequency configurations",
        render: |s, _| tables::table7(s),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table8",
        title: "Table VIII: GPU configurations",
        render: |s, _| tables::table8(s),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "table9",
        title: "Table IX: applications",
        render: |s, _| tables::table9(s),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig4",
        title: "Figure 4: operating domains",
        render: |_, _| figures::fig4(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig5",
        title: "Figure 5: high-performance VM classes",
        render: |_, _| figures::fig5(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig6",
        title: "Figure 6: static vs virtual buffers",
        render: |_, _| figures::fig6(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig7",
        title: "Figure 7: capacity crisis",
        render: |_, _| figures::fig7(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig9",
        title: "Figure 9: cloud workloads under overclocking",
        render: |_, _| figures::fig9(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig10",
        title: "Figure 10: STREAM bandwidth",
        render: |_, _| figures::fig10(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig11",
        title: "Figure 11: VGG training under GPU overclocking",
        render: |_, _| figures::fig11(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig12",
        title: "Figure 12: SQL P95 vs pcores",
        render: |_, _| figures::fig12(),
        metrics: Some(|_, _| (0, figures::fig12_metrics())),
        traced: None,
    },
    FnExperiment {
        id: "fig13",
        title: "Figure 13 / Table X: oversubscription",
        render: |_, _| figures::fig13(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig8",
        title: "Figure 8: hiding vs avoiding the scale-out",
        render: |_, m| figures::fig8(m.is_quick()),
        metrics: None,
        traced: Some(|_, m, f| figures::fig8_traced(m.is_quick(), f)),
    },
    FnExperiment {
        id: "fig14",
        title: "Figure 14: auto-scaling architecture",
        render: |_, _| figures::fig14(),
        metrics: None,
        traced: None,
    },
    FnExperiment {
        id: "fig15",
        title: "Figure 15: Equation 1 validation",
        render: |_, m| figures::fig15(m.is_quick()),
        metrics: Some(|_, m| figures::fig15_record(m.is_quick())),
        traced: Some(|_, m, f| figures::fig15_record_traced(m.is_quick(), f)),
    },
    FnExperiment {
        id: "fig16",
        title: "Figure 16: utilization under the three policies",
        render: |_, m| figures::fig16(m.is_quick()),
        metrics: Some(|_, m| figures::fig16_record(m.is_quick())),
        traced: Some(|_, m, f| figures::fig16_record_traced(m.is_quick(), f)),
    },
    FnExperiment {
        id: "table11",
        title: "Table XI: auto-scaler comparison",
        render: |_, m| tables::table11(m.is_quick()),
        metrics: Some(|_, m| tables::table11_record(m.is_quick())),
        traced: Some(|_, m, f| tables::table11_record_traced(m.is_quick(), f)),
    },
    FnExperiment {
        id: "composed",
        title: "Composed control plane: ASC + capping + governor + failover",
        render: |s, m| composed::composed(s.rng_stream, m.is_quick()),
        metrics: Some(|s, m| composed::composed_record(s.rng_stream, m.is_quick())),
        traced: Some(|s, m, f| composed::composed_record_traced(s.rng_stream, m.is_quick(), f)),
    },
    FnExperiment {
        id: "fleet_scale",
        title: "Fleet-scale control plane: 100 / 1k / 10k power domains",
        render: |_, m| fleet_scale::fleet_scale(m.is_quick()),
        metrics: Some(|_, m| fleet_scale::fleet_scale_record(m.is_quick())),
        traced: Some(|_, m, f| fleet_scale::fleet_scale_record_traced(m.is_quick(), f)),
    },
    // Appended after every pre-versioning record so the first 25 ids
    // (and their byte-identical v1 output) keep their positions.
    FnExperiment {
        id: "composed_v2",
        title: "Composed control plane on the v2 sampler stream",
        render: |_, m| composed::composed(StreamVersion::V2, m.is_quick()),
        metrics: Some(|_, m| composed::composed_record(StreamVersion::V2, m.is_quick())),
        traced: Some(|_, m, f| {
            composed::composed_record_traced(StreamVersion::V2, m.is_quick(), f)
        }),
    },
    FnExperiment {
        id: "chaos",
        title: "Chaos: wear-coupled faults and graceful degradation, B2 vs OC3",
        render: |s, m| chaos::chaos(s.rng_stream, m.is_quick()),
        metrics: Some(|s, m| chaos::chaos_record(s.rng_stream, m.is_quick())),
        traced: Some(|s, m, f| chaos::chaos_record_traced(s.rng_stream, m.is_quick(), f)),
    },
];

/// The full registry in paper order.
pub fn registry() -> &'static [FnExperiment] {
    &REGISTRY
}

/// A selection referencing an experiment id the registry doesn't have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The offending id.
    pub id: String,
}

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment id {:?} (run with --list to see the registry)",
            self.id
        )
    }
}

impl std::error::Error for UnknownExperiment {}

/// Resolves an optional `--only` id list against the registry. The
/// selection always comes back in registration (paper) order, whatever
/// order the ids were given in; `None` selects everything.
pub fn select(only: Option<&[String]>) -> Result<Vec<&'static FnExperiment>, UnknownExperiment> {
    match only {
        None => Ok(REGISTRY.iter().collect()),
        Some(ids) => {
            for id in ids {
                if !REGISTRY.iter().any(|e| e.id == id) {
                    return Err(UnknownExperiment { id: id.clone() });
                }
            }
            Ok(REGISTRY
                .iter()
                .filter(|e| ids.iter().any(|id| id == e.id))
                .collect())
        }
    }
}

/// Runs `run(0..n)` across up to `jobs` worker threads through the
/// deterministic scatter-gather pool ([`ic_par::ParPool`]) and returns
/// the results in index order. With `jobs <= 1` everything runs on the
/// calling thread; either way the output is byte-identical — experiments
/// inside a worker may themselves fan out via `ic_par` (nested scoped
/// pools compose without deadlock).
fn fan_out<T: Send>(n: usize, jobs: usize, run: impl Fn(usize) -> T + Sync) -> Vec<T> {
    ParPool::with_workers(jobs.clamp(1, n.max(1))).scatter_gather((0..n).collect(), |_, i| run(i))
}

/// Renders the selected experiments (all of them for `only: None`) and
/// joins them into the combined text report, fanning out across `jobs`
/// threads.
pub fn render_selected(
    scenario: &Scenario,
    mode: Mode,
    jobs: usize,
    only: Option<&[String]>,
) -> Result<String, UnknownExperiment> {
    let selected = select(only)?;
    let outputs = fan_out(selected.len(), jobs, |i| selected[i].render(scenario, mode));
    Ok(outputs.join("\n"))
}

/// Runs a single experiment by id and returns its record — the hook the
/// perf-trajectory bench (`benches/kernels.rs`) uses to time one
/// experiment end-to-end (`wall_ms`) without going through the CLI.
pub fn run_one(
    id: &str,
    scenario: &Scenario,
    mode: Mode,
) -> Result<ExperimentRecord, UnknownExperiment> {
    let exp = REGISTRY
        .iter()
        .find(|e| e.id == id)
        .ok_or_else(|| UnknownExperiment { id: id.to_string() })?;
    Ok(exp.run(scenario, mode))
}

/// Runs the selected experiments (all of them for `only: None`) and
/// returns their records in registration order, fanning out across
/// `jobs` threads.
pub fn run_selected(
    scenario: &Scenario,
    mode: Mode,
    jobs: usize,
    only: Option<&[String]>,
) -> Result<Vec<ExperimentRecord>, UnknownExperiment> {
    let selected = select(only)?;
    Ok(fan_out(selected.len(), jobs, |i| {
        selected[i].run(scenario, mode)
    }))
}

/// Ring capacity for each experiment's private flight recorder. Large
/// enough that a full `--quick` sweep keeps every span; overflow is
/// reported (not silently lost) via the merged recorder's drop counter.
const EXPERIMENT_FLIGHT_CAPACITY: usize = 1 << 18;

/// [`run_selected`] with flight recording: each experiment records into
/// a private recorder (so parallel workers never contend), and the
/// recorders are absorbed into `flight` in registration order — the
/// merged trace is byte-identical for every `jobs` value. The records
/// themselves match the untraced ones modulo `wall_ms`.
pub fn run_selected_traced(
    scenario: &Scenario,
    mode: Mode,
    jobs: usize,
    only: Option<&[String]>,
    flight: &FlightHandle,
) -> Result<Vec<ExperimentRecord>, UnknownExperiment> {
    let selected = select(only)?;
    let n = selected.len();
    let results = ParPool::with_workers(jobs.clamp(1, n.max(1))).scatter_gather_traced(
        (0..n).collect(),
        EXPERIMENT_FLIGHT_CAPACITY,
        |_, i, task_flight| selected[i].run_traced(scenario, mode, task_flight),
    );
    let mut merged = flight.borrow_mut();
    let mut records = Vec::with_capacity(n);
    for ((record, task_flight), exp) in results.into_iter().zip(&selected) {
        merged.absorb(task_flight, exp.id());
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_in_paper_order() {
        let ids: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 27);
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate experiment id");
        assert_eq!(ids.first(), Some(&"table1"));
        // Every pre-versioning id keeps its position; v2 variants append.
        assert_eq!(ids[24], "fleet_scale");
        assert_eq!(ids[25], "composed_v2");
        assert_eq!(ids.last(), Some(&"chaos"));
    }

    #[test]
    fn select_preserves_registration_order() {
        let ids = vec!["fig4".to_string(), "table2".to_string()];
        let picked = select(Some(&ids)).unwrap();
        let picked: Vec<&str> = picked.iter().map(|e| e.id()).collect();
        assert_eq!(picked, ["table2", "fig4"]);
    }

    #[test]
    fn select_rejects_unknown_ids() {
        let ids = vec!["table99".to_string()];
        let err = select(Some(&ids)).unwrap_err();
        assert_eq!(err.id, "table99");
        assert!(err.to_string().contains("table99"));
    }

    #[test]
    fn fan_out_orders_by_index() {
        for jobs in [1, 2, 7, 64] {
            let out = fan_out(20, jobs, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "{jobs}");
        }
        assert!(fan_out(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_one_times_a_single_experiment() {
        let s = Scenario::paper();
        let rec = run_one("table3", &s, Mode::Quick).unwrap();
        assert_eq!(rec.id, "table3");
        assert!(rec.wall_ms >= 0.0);
        assert_eq!(run_one("nope", &s, Mode::Quick).unwrap_err().id, "nope");
    }

    #[test]
    fn traced_records_match_untraced_and_merged_trace_is_jobs_invariant() {
        let s = Scenario::paper();
        // fig8 is flight-instrumented; table3 exercises the untraced
        // fallback inside the traced fan-out.
        let only = vec!["table3".to_string(), "fig8".to_string()];
        let plain = run_selected(&s, Mode::Quick, 1, Some(&only)).unwrap();
        let mut exports = Vec::new();
        for jobs in [1usize, 2, 7] {
            let flight = ic_obs::flight::shared_flight(EXPERIMENT_FLIGHT_CAPACITY);
            let traced = run_selected_traced(&s, Mode::Quick, jobs, Some(&only), &flight).unwrap();
            assert_eq!(plain.len(), traced.len());
            for (a, b) in plain.iter().zip(&traced) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.sim_events, b.sim_events);
                assert_eq!(a.metrics, b.metrics, "tracing must not change {}", a.id);
            }
            let f = flight.borrow();
            assert_eq!(f.dropped(), 0);
            let counts = f.counts_by_kind();
            assert!(counts.contains_key(&("bench", "table3")));
            assert!(counts.contains_key(&("bench", "fig8")));
            exports.push(f.to_chrome_trace());
        }
        assert_eq!(exports[0], exports[1], "jobs=1 vs jobs=2");
        assert_eq!(exports[0], exports[2], "jobs=1 vs jobs=7");
    }

    #[test]
    fn parallel_records_match_serial_modulo_wall_ms() {
        let s = Scenario::paper();
        let only = vec![
            "table2".to_string(),
            "table3".to_string(),
            "table5".to_string(),
            "fig12".to_string(),
        ];
        let serial = run_selected(&s, Mode::Quick, 1, Some(&only)).unwrap();
        let parallel = run_selected(&s, Mode::Quick, 4, Some(&only)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.title, b.title);
            assert_eq!(a.sim_events, b.sim_events);
            assert_eq!(a.metrics, b.metrics);
        }
    }
}
