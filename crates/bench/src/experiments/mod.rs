//! All experiment implementations, one module per table/figure.

pub mod ablations;
pub mod figures;
pub mod tables;

/// Runs every experiment in paper order and returns the combined report.
/// `quick` shortens the simulation-backed experiments (Table XI,
/// Figures 15/16) for fast runs; the full versions match the paper's
/// schedules exactly.
pub fn run_all(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1());
    out.push('\n');
    out.push_str(&tables::table2());
    out.push('\n');
    out.push_str(&tables::table3());
    out.push('\n');
    out.push_str(&tables::table4());
    out.push('\n');
    out.push_str(&tables::table5());
    out.push('\n');
    out.push_str(&tables::table6());
    out.push('\n');
    out.push_str(&tables::table7());
    out.push('\n');
    out.push_str(&tables::table8());
    out.push('\n');
    out.push_str(&tables::table9());
    out.push('\n');
    out.push_str(&figures::fig4());
    out.push('\n');
    out.push_str(&figures::fig5());
    out.push('\n');
    out.push_str(&figures::fig6());
    out.push('\n');
    out.push_str(&figures::fig7());
    out.push('\n');
    out.push_str(&figures::fig9());
    out.push('\n');
    out.push_str(&figures::fig10());
    out.push('\n');
    out.push_str(&figures::fig11());
    out.push('\n');
    out.push_str(&figures::fig12());
    out.push('\n');
    out.push_str(&figures::fig13());
    out.push('\n');
    out.push_str(&figures::fig8(quick));
    out.push('\n');
    out.push_str(&figures::fig14());
    out.push('\n');
    out.push_str(&figures::fig15(quick));
    out.push('\n');
    out.push_str(&figures::fig16(quick));
    out.push('\n');
    out.push_str(&tables::table11(quick));
    out
}
