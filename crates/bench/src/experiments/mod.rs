//! All experiment implementations, one module per table/figure.

pub mod ablations;
pub mod figures;
pub mod tables;

/// Runs every experiment in paper order and returns the combined report.
/// `quick` shortens the simulation-backed experiments (Table XI,
/// Figures 15/16) for fast runs; the full versions match the paper's
/// schedules exactly.
pub fn run_all(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1());
    out.push('\n');
    out.push_str(&tables::table2());
    out.push('\n');
    out.push_str(&tables::table3());
    out.push('\n');
    out.push_str(&tables::table4());
    out.push('\n');
    out.push_str(&tables::table5());
    out.push('\n');
    out.push_str(&tables::table6());
    out.push('\n');
    out.push_str(&tables::table7());
    out.push('\n');
    out.push_str(&tables::table8());
    out.push('\n');
    out.push_str(&tables::table9());
    out.push('\n');
    out.push_str(&figures::fig4());
    out.push('\n');
    out.push_str(&figures::fig5());
    out.push('\n');
    out.push_str(&figures::fig6());
    out.push('\n');
    out.push_str(&figures::fig7());
    out.push('\n');
    out.push_str(&figures::fig9());
    out.push('\n');
    out.push_str(&figures::fig10());
    out.push('\n');
    out.push_str(&figures::fig11());
    out.push('\n');
    out.push_str(&figures::fig12());
    out.push('\n');
    out.push_str(&figures::fig13());
    out.push('\n');
    out.push_str(&figures::fig8(quick));
    out.push('\n');
    out.push_str(&figures::fig14());
    out.push('\n');
    out.push_str(&figures::fig15(quick));
    out.push('\n');
    out.push_str(&figures::fig16(quick));
    out.push('\n');
    out.push_str(&tables::table11(quick));
    out
}

/// Runs every experiment in paper order, emitting one machine-readable
/// JSONL record per experiment (see [`crate::report::ExperimentRecord`]).
/// Analytic experiments report `sim_events: 0`; simulation-backed ones
/// (Figures 15/16, Table XI) report their discrete-event counts.
/// Experiments the paper reports numbers for carry paper-vs-measured
/// metric pairs.
pub fn run_all_json(quick: bool) -> String {
    use crate::report::{ExperimentRecord, Metric};
    use std::time::Instant;

    fn timed(
        id: &'static str,
        title: &'static str,
        run: impl FnOnce() -> (u64, Vec<Metric>),
    ) -> ExperimentRecord {
        let started = Instant::now();
        let (sim_events, metrics) = run();
        ExperimentRecord {
            id,
            title: title.to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            sim_events,
            metrics,
        }
    }

    // Analytic experiments: time the render, report line count so the
    // record carries a measurement even without paper targets.
    fn rendered(
        id: &'static str,
        title: &'static str,
        render: impl FnOnce() -> String,
    ) -> ExperimentRecord {
        timed(id, title, || {
            let out = render();
            (
                0,
                vec![Metric::new(
                    "output_lines",
                    "count",
                    out.lines().count() as f64,
                )],
            )
        })
    }

    let records = vec![
        rendered("table1", "Table I: cooling technologies", tables::table1),
        rendered("table2", "Table II: dielectric fluids", tables::table2),
        timed("table3", "Table III: max turbo, air vs 2PIC", || {
            (0, tables::table3_metrics())
        }),
        rendered(
            "table4",
            "Table IV: failure-mode dependencies",
            tables::table4,
        ),
        timed("table5", "Table V: projected lifetime", || {
            (0, tables::table5_metrics())
        }),
        rendered("table6", "Table VI: TCO analysis", tables::table6),
        rendered(
            "table7",
            "Table VII: CPU frequency configurations",
            tables::table7,
        ),
        rendered("table8", "Table VIII: GPU configurations", tables::table8),
        rendered("table9", "Table IX: applications", tables::table9),
        rendered("fig4", "Figure 4: operating domains", figures::fig4),
        rendered(
            "fig5",
            "Figure 5: high-performance VM classes",
            figures::fig5,
        ),
        rendered("fig6", "Figure 6: static vs virtual buffers", figures::fig6),
        rendered("fig7", "Figure 7: capacity crisis", figures::fig7),
        rendered(
            "fig9",
            "Figure 9: cloud workloads under overclocking",
            figures::fig9,
        ),
        rendered("fig10", "Figure 10: STREAM bandwidth", figures::fig10),
        rendered(
            "fig11",
            "Figure 11: VGG training under GPU overclocking",
            figures::fig11,
        ),
        timed("fig12", "Figure 12: SQL P95 vs pcores", || {
            (0, figures::fig12_metrics())
        }),
        rendered(
            "fig13",
            "Figure 13 / Table X: oversubscription",
            figures::fig13,
        ),
        rendered("fig8", "Figure 8: hiding vs avoiding the scale-out", || {
            figures::fig8(quick)
        }),
        rendered(
            "fig14",
            "Figure 14: auto-scaling architecture",
            figures::fig14,
        ),
        timed("fig15", "Figure 15: Equation 1 validation", || {
            figures::fig15_record(quick)
        }),
        timed(
            "fig16",
            "Figure 16: utilization under the three policies",
            || figures::fig16_record(quick),
        ),
        timed("table11", "Table XI: auto-scaler comparison", || {
            tables::table11_record(quick)
        }),
    ];

    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_covers_every_experiment() {
        let out = run_all_json(true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 23, "one record per experiment");
        for line in &lines {
            assert!(line.starts_with("{\"id\":\""), "{line}");
            assert!(line.ends_with("]}"), "{line}");
        }
        for id in [
            "table1", "table3", "table5", "table11", "fig12", "fig15", "fig16",
        ] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with(&format!("{{\"id\":\"{id}\","))),
                "missing record for {id}"
            );
        }
        // The simulation-backed experiments must report their event counts.
        let table11 = lines
            .iter()
            .find(|l| l.contains("\"id\":\"table11\""))
            .unwrap();
        assert!(!table11.contains("\"sim_events\":0,"), "{table11}");
        // Paper targets ride along with measured values.
        assert!(table11.contains("\"paper\":0.58"));
        assert!(table11.contains("\"paper\":1.95"));
    }

    #[test]
    fn paper_anchored_metrics_track_the_paper() {
        for m in tables::table3_metrics() {
            let paper = m.paper.expect("table3 rows all have paper values");
            assert!(
                (m.measured - paper).abs() < 5.0,
                "{}: {} vs {paper}",
                m.name,
                m.measured
            );
        }
        let t5 = tables::table5_metrics();
        assert_eq!(t5.len(), 6);
        for m in figures::fig12_metrics() {
            if m.name == "crossover_p95_delta_pct" {
                assert!(m.measured.abs() < 2.0, "crossover delta {}", m.measured);
            }
        }
    }
}
