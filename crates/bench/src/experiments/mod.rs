//! All experiment implementations, one module per table/figure.

pub mod ablations;
pub mod chaos;
pub mod composed;
pub mod figures;
pub mod fleet_scale;
pub mod tables;

use crate::registry::{render_selected, run_selected, Mode};
use ic_scenario::Scenario;

fn mode_for(quick: bool) -> Mode {
    if quick {
        Mode::Quick
    } else {
        Mode::Full
    }
}

/// Runs every experiment in paper order and returns the combined report.
/// `quick` shortens the simulation-backed experiments (Table XI,
/// Figures 15/16) for fast runs; the full versions match the paper's
/// schedules exactly. A thin wrapper over [`crate::registry`] with the
/// paper scenario and a single worker.
pub fn run_all(quick: bool) -> String {
    render_selected(&Scenario::paper(), mode_for(quick), 1, None)
        .expect("the unfiltered selection always resolves")
}

/// Runs every experiment in paper order, emitting one machine-readable
/// JSONL record per experiment (see [`crate::report::ExperimentRecord`]).
/// Analytic experiments report `sim_events: 0`; simulation-backed ones
/// (Figures 15/16, Table XI) report their discrete-event counts.
/// Experiments the paper reports numbers for carry paper-vs-measured
/// metric pairs.
pub fn run_all_json(quick: bool) -> String {
    let records = run_selected(&Scenario::paper(), mode_for(quick), 1, None)
        .expect("the unfiltered selection always resolves");
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_covers_every_experiment() {
        let out = run_all_json(true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 27, "one record per experiment");
        for line in &lines {
            assert!(line.starts_with("{\"id\":\""), "{line}");
            assert!(line.ends_with("]}"), "{line}");
        }
        for id in [
            "table1",
            "table3",
            "table5",
            "table11",
            "fig12",
            "fig15",
            "fig16",
            "composed",
            "composed_v2",
            "chaos",
        ] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with(&format!("{{\"id\":\"{id}\","))),
                "missing record for {id}"
            );
        }
        // The simulation-backed experiments must report their event counts.
        let table11 = lines
            .iter()
            .find(|l| l.contains("\"id\":\"table11\""))
            .unwrap();
        assert!(!table11.contains("\"sim_events\":0,"), "{table11}");
        // Paper targets ride along with measured values.
        assert!(table11.contains("\"paper\":0.58"));
        assert!(table11.contains("\"paper\":1.95"));
    }

    #[test]
    fn paper_anchored_metrics_track_the_paper() {
        let s = Scenario::paper();
        for m in tables::table3_metrics(&s) {
            let paper = m.paper.expect("table3 rows all have paper values");
            assert!(
                (m.measured - paper).abs() < 5.0,
                "{}: {} vs {paper}",
                m.name,
                m.measured
            );
        }
        let t5 = tables::table5_metrics(&s);
        assert_eq!(t5.len(), 6);
        for m in figures::fig12_metrics() {
            if m.name == "crossover_p95_delta_pct" {
                assert!(m.measured.abs() < 2.0, "crossover delta {}", m.measured);
            }
        }
    }
}
