//! Table regeneration (Tables I–IX and XI).

use crate::{cell, table};
use ic_autoscale::runner::{ramp_schedule, table11_runs, table11_runs_traced, RunnerConfig};
use ic_obs::flight::FlightHandle;
use ic_power::cpu::CpuSku;
use ic_reliability::lifetime::{table5_rows_from, CompositeLifetimeModel};
use ic_reliability::mechanisms::{
    Electromigration, FailureMechanism, GateOxideBreakdown, ThermalCycling,
};
use ic_scenario::Scenario;
use ic_tco::TcoModel;
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::table3_platforms_from;
use ic_thermal::technology::CoolingTechnology;
use ic_workloads::apps::{AppProfile, Origin};
use ic_workloads::configs::CpuConfig;
use ic_workloads::gpu::GpuConfig;

/// Table I: comparison of the main datacenter cooling technologies.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = CoolingTechnology::catalog()
        .into_iter()
        .map(|t| {
            vec![
                t.name().to_string(),
                cell(t.avg_pue(), 2),
                cell(t.peak_pue(), 2),
                format!("{:.0}%", t.fan_overhead() * 100.0),
                if t.max_server_cooling_w() >= 4000.0 {
                    ">4 kW".to_string()
                } else if t.max_server_cooling_w() >= 1000.0 {
                    format!("{:.0} kW", t.max_server_cooling_w() / 1000.0)
                } else {
                    format!("{:.0} W", t.max_server_cooling_w())
                },
            ]
        })
        .collect();
    table(
        "Table I: cooling technologies",
        &[
            "Technology",
            "Avg PUE",
            "Peak PUE",
            "Fan overhead",
            "Max cooling",
        ],
        &rows,
    )
}

/// Table II: dielectric fluid properties.
pub fn table2(scenario: &Scenario) -> String {
    let rows: Vec<Vec<String>> = scenario
        .thermal
        .fluids
        .iter()
        .map(DielectricFluid::from_spec)
        .map(|f| {
            vec![
                f.name().to_string(),
                format!("{:.0} °C", f.boiling_point_c()),
                cell(f.dielectric_constant(), 2),
                format!("{:.0} J/g", f.latent_heat_j_per_g()),
                format!(">{:.0} years", f.useful_life_years()),
            ]
        })
        .collect();
    table(
        "Table II: dielectric fluids",
        &[
            "Fluid",
            "Boiling point",
            "Dielectric const",
            "Latent heat",
            "Useful life",
        ],
        &rows,
    )
}

/// Table III: maximum attained frequency and power, air vs FC-3284.
pub fn table3(scenario: &Scenario) -> String {
    let platforms = table3_platforms_from(&scenario.thermal);
    let mut rows = Vec::new();
    for (spec, (label, iface, _power, observed_tj)) in
        scenario.thermal.platforms.iter().zip(&platforms)
    {
        let sku = CpuSku::by_name(&spec.sku).expect("known CPU SKU");
        let turbo = sku.max_turbo(iface, sku.tdp_w());
        let ss = sku.steady_state(iface, turbo, sku.nominal_voltage());
        rows.push(vec![
            label.to_string(),
            format!("{:.0} °C (paper {observed_tj:.0})", ss.tj_c),
            format!("{:.1} W", ss.power_w),
            format!("{turbo}"),
            format!("{:.2} °C/W", iface.resistance_c_per_w()),
        ]);
    }
    table(
        "Table III: max turbo, air vs 2PIC",
        &["Platform", "Tj max", "Power", "Max turbo", "R_th"],
        &rows,
    )
}

/// Table IV: failure-mode parameter dependencies.
pub fn table4(scenario: &Scenario) -> String {
    let rel = &scenario.reliability;
    let mechanisms: Vec<Box<dyn FailureMechanism>> = vec![
        Box::new(GateOxideBreakdown::from_spec(&rel.gate_oxide)),
        Box::new(Electromigration::from_spec(&rel.electromigration)),
        Box::new(ThermalCycling::from_spec(&rel.thermal_cycling)),
    ];
    let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
    let rows: Vec<Vec<String>> = mechanisms
        .iter()
        .map(|m| {
            vec![
                m.name().to_string(),
                mark(m.depends_on_temperature()),
                mark(m.depends_on_delta_t()),
                mark(m.depends_on_voltage()),
            ]
        })
        .collect();
    table(
        "Table IV: failure-mode dependencies",
        &["Failure mode", "T", "dT", "V"],
        &rows,
    )
}

/// Table V: projected lifetimes at the six (cooling, OC) points.
pub fn table5(scenario: &Scenario) -> String {
    let model = CompositeLifetimeModel::from_calibration(&scenario.reliability);
    let rows: Vec<Vec<String>> = table5_rows_from(&scenario.reliability)
        .into_iter()
        .map(|row| {
            let years = model.lifetime_years(&row.conditions);
            let paper = match (row.paper_years, row.overclocked) {
                (y, _) if y >= 10.0 && !row.overclocked => "> 10 years".to_string(),
                (y, true) if row.cooling == "Air cooling" => {
                    let _ = y;
                    "< 1 year".to_string()
                }
                (y, _) => format!("{y:.0} years"),
            };
            vec![
                row.cooling.to_string(),
                if row.overclocked { "yes" } else { "no" }.to_string(),
                format!("{:.2} V", row.conditions.voltage_v()),
                format!("{:.0} °C", row.conditions.tj_max_c()),
                format!(
                    "{:.0}-{:.0} °C",
                    row.conditions.tj_min_c(),
                    row.conditions.tj_max_c()
                ),
                format!("{years:.1} years"),
                paper,
            ]
        })
        .collect();
    table(
        "Table V: projected lifetime",
        &[
            "Cooling", "OC", "Voltage", "Tj max", "DTj", "Model", "Paper",
        ],
        &rows,
    )
}

/// Table VI: TCO deltas relative to the air-cooled baseline.
pub fn table6() -> String {
    format!(
        "== Table VI: TCO analysis ==\n{}",
        TcoModel::paper().render_table6()
    )
}

/// Table VII: experimental CPU frequency configurations.
pub fn table7(scenario: &Scenario) -> String {
    let rows: Vec<Vec<String>> = CpuConfig::catalog_from(&scenario.workloads)
        .into_iter()
        .map(|c| {
            vec![
                c.name().to_string(),
                format!("{:.1}", c.core().ghz()),
                format!("{}", c.voltage_offset_mv()),
                if c.turbo() { "yes" } else { "no" }.to_string(),
                format!("{:.1}", c.llc().ghz()),
                format!("{:.1}", c.memory().ghz()),
            ]
        })
        .collect();
    table(
        "Table VII: CPU frequency configurations",
        &[
            "Config",
            "Core GHz",
            "V offset mV",
            "Turbo",
            "LLC GHz",
            "Mem GHz",
        ],
        &rows,
    )
}

/// Table VIII: GPU configurations.
pub fn table8(scenario: &Scenario) -> String {
    let rows: Vec<Vec<String>> = GpuConfig::catalog_from(&scenario.workloads)
        .into_iter()
        .map(|c| {
            vec![
                c.name().to_string(),
                format!("{:.0}", c.power_limit_w()),
                format!("{:.2}", c.base_clock().ghz()),
                format!("{:.3}", c.turbo_clock().ghz()),
                format!("{:.1}", c.memory().ghz()),
                format!("{}", c.voltage_offset_mv()),
            ]
        })
        .collect();
    table(
        "Table VIII: GPU configurations",
        &[
            "Config",
            "Power W",
            "Base GHz",
            "Turbo GHz",
            "Mem GHz",
            "V offset mV",
        ],
        &rows,
    )
}

/// Table IX: applications and their metric of interest.
pub fn table9(scenario: &Scenario) -> String {
    let rows: Vec<Vec<String>> = AppProfile::catalog_from(&scenario.workloads)
        .into_iter()
        .map(|a| {
            vec![
                a.name().to_string(),
                format!("{}", a.cores()),
                format!(
                    "{} ({})",
                    a.description(),
                    match a.origin() {
                        Origin::InHouse => "I",
                        Origin::Public => "P",
                    }
                ),
                a.metric().to_string(),
            ]
        })
        .collect();
    table(
        "Table IX: applications",
        &["Application", "#Cores", "Description", "Metric"],
        &rows,
    )
}

/// Table XI: the full auto-scaler experiment. `quick` shortens the ramp
/// (500→2500 QPS) for fast runs; the full version is the paper's
/// 500→4000 ramp with 5-minute steps.
pub fn table11(quick: bool) -> String {
    let mut config = RunnerConfig::paper();
    if quick {
        config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    }
    let (base, oce, oca) = table11_runs(config, 42);
    let rows: Vec<Vec<String>> = [&base, &oce, &oca]
        .into_iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                cell(r.p95_latency_s / base.p95_latency_s, 2),
                cell(r.avg_latency_s / base.avg_latency_s, 2),
                format!("{}", r.max_vms),
                cell(r.vm_hours, 2),
                format!("{:+.0}%", (r.avg_power_w / base.avg_power_w - 1.0) * 100.0),
            ]
        })
        .collect();
    let mut out = table(
        if quick {
            "Table XI: auto-scaler comparison (quick ramp to 2500 QPS)"
        } else {
            "Table XI: auto-scaler comparison (full 500-4000 QPS ramp)"
        },
        &[
            "Config",
            "Norm P95 Lat",
            "Norm Avg Lat",
            "Max VMs",
            "VMxHours",
            "Avg power",
        ],
        &rows,
    );
    out.push_str(
        "(paper: P95 1.00/0.58/0.46, Max VMs 6/6/5, VMxHours 2.20/2.17/1.95, power +0/+7/+27%)\n",
    );
    out
}

/// Structured Table III metrics: modeled steady-state junction
/// temperature vs the paper's observed Tj, per platform.
pub fn table3_metrics(scenario: &Scenario) -> Vec<crate::report::Metric> {
    use crate::report::Metric;
    let platforms = table3_platforms_from(&scenario.thermal);
    let mut metrics = Vec::new();
    for (spec, (label, iface, _power, observed_tj)) in
        scenario.thermal.platforms.iter().zip(&platforms)
    {
        let sku = CpuSku::by_name(&spec.sku).expect("known CPU SKU");
        let turbo = sku.max_turbo(iface, sku.tdp_w());
        let ss = sku.steady_state(iface, turbo, sku.nominal_voltage());
        metrics.push(Metric::with_paper(
            format!("tj_c[{label}]"),
            "celsius",
            *observed_tj,
            ss.tj_c,
        ));
    }
    metrics
}

/// Structured Table V metrics: modeled lifetime vs the paper's reported
/// lifetime, per (cooling, overclocking) row.
pub fn table5_metrics(scenario: &Scenario) -> Vec<crate::report::Metric> {
    use crate::report::Metric;
    let model = CompositeLifetimeModel::from_calibration(&scenario.reliability);
    table5_rows_from(&scenario.reliability)
        .into_iter()
        .map(|row| {
            Metric::with_paper(
                format!(
                    "lifetime_years[{}{}]",
                    row.cooling,
                    if row.overclocked { " OC" } else { "" }
                ),
                "years",
                row.paper_years,
                model.lifetime_years(&row.conditions),
            )
        })
        .collect()
}

/// Structured Table XI record: the auto-scaler comparison against the
/// paper's reported values, plus the combined simulation-event count,
/// for `run_all --json`. Quick runs shorten the ramp, so measured
/// values drift from the paper targets; the record reports both.
pub fn table11_record(quick: bool) -> (u64, Vec<crate::report::Metric>) {
    table11_record_with(quick, None)
}

/// [`table11_record`] with flight recording: the three policy runs go
/// through [`table11_runs_traced`], so each run's windows, engine
/// phases, and scale decisions land on `flight` (in fixed
/// baseline/OC-E/OC-A order). The returned record is byte-identical to
/// the untraced one — tracing is a side channel, never a perturbation.
pub fn table11_record_traced(
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<crate::report::Metric>) {
    table11_record_with(quick, Some(flight))
}

fn table11_record_with(
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<crate::report::Metric>) {
    use crate::report::Metric;
    let mut config = RunnerConfig::paper();
    if quick {
        config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    }
    let (base, oce, oca) = match flight {
        Some(flight) => table11_runs_traced(config, 42, flight),
        None => table11_runs(config, 42),
    };
    let sim_events = base.sim_events + oce.sim_events + oca.sim_events;
    // Paper Table XI: P95 1.00/0.58/0.46, Max VMs 6/6/5,
    // VMxHours 2.20/2.17/1.95, power +0/+7/+27%.
    let paper = [
        (&base, 1.00, 6.0, 2.20, 0.0),
        (&oce, 0.58, 6.0, 2.17, 7.0),
        (&oca, 0.46, 5.0, 1.95, 27.0),
    ];
    let mut metrics = Vec::new();
    for (r, p95_norm, max_vms, vm_hours, power_delta) in paper {
        let policy = r.policy;
        metrics.push(Metric::with_paper(
            format!("p95_norm[{policy}]"),
            "ratio",
            p95_norm,
            r.p95_latency_s / base.p95_latency_s,
        ));
        metrics.push(Metric::with_paper(
            format!("max_vms[{policy}]"),
            "count",
            max_vms,
            r.max_vms as f64,
        ));
        metrics.push(Metric::with_paper(
            format!("vm_hours[{policy}]"),
            "vm_hours",
            vm_hours,
            r.vm_hours,
        ));
        metrics.push(Metric::with_paper(
            format!("power_delta_pct[{policy}]"),
            "percent",
            power_delta,
            (r.avg_power_w / base.avg_power_w - 1.0) * 100.0,
        ));
    }
    (sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let s = Scenario::paper();
        for t in [
            table1(),
            table2(&s),
            table3(&s),
            table4(&s),
            table5(&s),
            table6(),
            table7(&s),
            table8(&s),
            table9(&s),
        ] {
            assert!(t.contains("=="), "{t}");
            assert!(t.lines().count() >= 4);
        }
    }

    #[test]
    fn table3_shows_extra_bin() {
        let t = table3(&Scenario::paper());
        assert!(t.contains("3.1 GHz") && t.contains("3.2 GHz"));
        assert!(t.contains("2.6 GHz") && t.contains("2.7 GHz"));
    }

    #[test]
    fn table5_matches_paper_column() {
        let t = table5(&Scenario::paper());
        assert!(t.contains("> 10 years"));
        assert!(t.contains("< 1 year"));
    }

    #[test]
    fn table6_bottom_lines() {
        let t = table6();
        assert!(t.contains("-7%") && t.contains("-4%"));
    }
}
