//! Fleet-scale control-plane hot path: the composed controller set at
//! 100, 1 000, and 10 000 power domains.
//!
//! The point of this experiment is *scaling shape*, not throughput: the
//! serving workload (one seeded M/G/k sim) is the same at every fleet
//! size, so any extra cost at 10 000 servers is pure control-plane
//! overhead — snapshot maintenance, power capping, demand refreshes.
//! The incremental telemetry path makes most of that cost O(dirty):
//! power-section version skipping turns unchanged capping/governor
//! ticks into O(1) no-ops, the persistent snapshot refills VM rows
//! without allocating, and a fleet-wide frequency change batch-solves
//! only the thermal-heterogeneity bins (4 distinct operating points)
//! rather than all 10 000 domains.
//!
//! The record reports only deterministic quantities (tick counts,
//! demand refreshes, steady-state cache hits/misses, power-section
//! versions) so `run_all --json` stays byte-identical across worker
//! counts; the wall-clock side of the story — per-tick cost growing
//! sublinearly in fleet size — is measured by the `kernels` bench
//! (`fleet10k_ctrl_ticks_per_sec`, `fleet_snapshot_ns_per_vm`).

use crate::report::Metric;
use ic_controlplane::controllers::{
    FailoverController, GovernorController, PowerCapController, ScriptController,
};
use ic_controlplane::{
    Action, ControlPlane, DomainSpec, FleetConfig, FleetConfigBuilder, FleetWorld, PowerModelSpec,
    World,
};
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_obs::flight::FlightHandle;
use ic_obs::ObsSinks;
use ic_power::capping::{PowerAllocator, Priority};
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::CompositeLifetimeModel;
use ic_reliability::stability::StabilityModel;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;

/// The workload seed shared by render and record paths.
const SEED: u64 = 42;

/// The fleet sizes swept (domains == servers).
pub const SIZES: [usize; 3] = [100, 1_000, 10_000];

/// Per-domain budget, watts: scales the fleet budget with its size so
/// the per-domain contention picture is identical at every size.
const BUDGET_PER_DOMAIN_W: f64 = 100.0;

/// Cadences, seconds (the composed experiment's slow loops; the
/// auto-scaler is deliberately absent so the workload stream cannot
/// depend on cluster capacity).
const CAP_PERIOD_S: u64 = 30;
const WATCH_PERIOD_S: u64 = 15;

/// The tank governor (the paper's 2PIC HFE-7000 Skylake socket).
fn governor() -> OverclockGovernor {
    OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    )
}

/// The fleet at `servers` domains: one power domain per server, every
/// fourth domain critical, and a 4-bin thermal-heterogeneity power
/// model (tank position perturbing the junction-to-coolant boundary
/// resistance). Per-domain floors, demands, and budget share are
/// size-independent by construction.
pub fn fleet_config(servers: usize, quick: bool) -> FleetConfig {
    let mut config = FleetConfigBuilder::small(SEED).build();
    if quick {
        config.schedule = config
            .schedule
            .iter()
            .map(|&(t, qps)| (t / 2.0, qps))
            .collect();
    }
    config.servers = servers;
    config.initial_vms = 4;
    config.budget_w = BUDGET_PER_DOMAIN_W * servers as f64;
    config.domains = (0..servers)
        .map(|i| DomainSpec {
            domain: i as u64,
            priority: if i % 4 == 0 {
                Priority::Critical
            } else {
                Priority::Batch
            },
            floor_w: 60.0,
            demand_w: 130.0,
        })
        .collect();
    config.power_model = Some(PowerModelSpec {
        sku: CpuSku::skylake_8180(),
        bins: [0.080, 0.084, 0.088, 0.092]
            .iter()
            .map(|&r| ThermalInterface::two_phase(DielectricFluid::hfe7000(), r, 0.0))
            .collect(),
        base_ghz: 3.4,
    });
    config
}

/// What one fleet size reports.
struct SizeRun {
    servers: usize,
    sim_events: u64,
    completed: u64,
    cp_ticks: u64,
    demand_refreshes: u64,
    cache_hits: u64,
    cache_misses: u64,
    power_version: u64,
    governor_ghz: f64,
    vms_end: usize,
    failed_end: usize,
}

/// Runs one fleet size to its horizon under capping, the governor, a
/// scripted failure/repair of server 0, and failover.
fn run_size(servers: usize, quick: bool, flight: Option<&FlightHandle>) -> SizeRun {
    let config = fleet_config(servers, quick);
    let dwell_s = if quick { 120.0 } else { 300.0 };
    let last_s = config.schedule.last().map(|&(t, _)| t).unwrap_or(0.0);
    let end_s = last_s + dwell_s;
    let fail_at_s = 0.5 * end_s;
    let repair_at_s = 0.75 * end_s;
    let budget_w = config.budget_w;

    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);
    if let Some(flight) = flight {
        plane.attach_sinks(ObsSinks::none().with_flight(flight.clone()));
    }
    // Capping precedes the governor at shared instants so fresh grants
    // land before the governor reads them.
    plane.register(
        Box::new(PowerCapController::new(PowerAllocator::new(budget_w))),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    let gov_id = plane.register(
        Box::new(GovernorController::new(
            governor(),
            Frequency::from_ghz(4.1),
            Frequency::from_ghz(3.4),
        )),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    plane.register(
        Box::new(
            ScriptController::new(vec![
                (
                    SimTime::from_secs_f64(fail_at_s),
                    Action::FailServer { server: 0 },
                ),
                (
                    SimTime::from_secs_f64(repair_at_s),
                    Action::RepairServer { server: 0 },
                ),
            ])
            .expect("script events are time-sorted"),
        ),
        SimDuration::from_secs(WATCH_PERIOD_S),
    );
    plane.register(
        Box::new(FailoverController::new(1.2)),
        SimDuration::from_secs(WATCH_PERIOD_S),
    );

    plane.run_until(SimTime::from_secs_f64(end_s));

    let cp_ticks = plane.ticks_total();
    let governor_ghz = plane
        .controller::<GovernorController>(gov_id)
        .and_then(|g| g.last_decision())
        .map(|d| d.frequency.ghz())
        .expect("governor ticked at least once");

    let end = SimTime::from_secs_f64(end_s);
    let mut world = plane.into_world();
    let (cache_hits, cache_misses) = world.model_cache_counters();
    let demand_refreshes = world.demand_refreshes();
    let snap = world.telemetry(end);
    let power_version = snap.power.as_ref().map_or(0, |p| p.version);
    let failed_end = snap.cluster.as_ref().map_or(0, |c| c.failed_servers.len());

    SizeRun {
        servers,
        sim_events: world.sim().events_processed(),
        completed: world.sim().completed_requests(),
        cp_ticks,
        demand_refreshes,
        cache_hits,
        cache_misses,
        power_version,
        governor_ghz,
        vms_end: world.sim().active_vms().len(),
        failed_end,
    }
}

/// Runs one fleet size end-to-end and returns `(cp_ticks,
/// wall_seconds)` — the kernels bench divides these for
/// `fleet10k_ctrl_ticks_per_sec`.
pub fn timed_ctrl_ticks(servers: usize, quick: bool) -> (u64, f64) {
    let start = std::time::Instant::now();
    let r = run_size(servers, quick, None);
    (r.cp_ticks, start.elapsed().as_secs_f64())
}

fn sweep(quick: bool, flight: Option<&FlightHandle>) -> Vec<SizeRun> {
    SIZES
        .iter()
        .map(|&servers| run_size(servers, quick, flight))
        .collect()
}

/// The fleet-scale experiment's human-readable report.
pub fn fleet_scale(quick: bool) -> String {
    let runs = sweep(quick, None);
    let mut out = String::from("== Fleet-scale control plane: 100 / 1k / 10k power domains ==\n");
    out.push_str(
        "same seeded workload at every size; extra domains cost only O(dirty) \
         control-plane work\n",
    );
    out.push_str("size     cp_ticks  refreshes  cache h/m  power_ver  gov GHz  completed\n");
    for r in &runs {
        out.push_str(&format!(
            "{:<8} {:<9} {:<10} {:<4}/{:<5} {:<10} {:<8.2} {}\n",
            r.servers,
            r.cp_ticks,
            r.demand_refreshes,
            r.cache_hits,
            r.cache_misses,
            r.power_version,
            r.governor_ghz,
            r.completed,
        ));
    }
    out.push_str(&format!(
        "end state at 10k: {} serving VMs, {} failed servers\n",
        runs[2].vms_end, runs[2].failed_end
    ));
    out.push_str(
        "wall-clock scaling is measured by the kernels bench \
         (fleet10k_ctrl_ticks_per_sec, fleet_snapshot_ns_per_vm)\n",
    );
    out
}

/// Structured record for `run_all --json`.
pub fn fleet_scale_record(quick: bool) -> (u64, Vec<Metric>) {
    fleet_scale_record_with(quick, None)
}

/// [`fleet_scale_record`] with flight recording: the control plane's
/// tick instants land in `flight`; the record itself is byte-identical
/// to the untraced one.
pub fn fleet_scale_record_traced(quick: bool, flight: &FlightHandle) -> (u64, Vec<Metric>) {
    fleet_scale_record_with(quick, Some(flight))
}

fn fleet_scale_record_with(quick: bool, flight: Option<&FlightHandle>) -> (u64, Vec<Metric>) {
    let runs = sweep(quick, flight);
    let mut metrics = Vec::new();
    let mut sim_events = 0;
    for r in &runs {
        sim_events += r.sim_events;
        let n = r.servers;
        metrics.push(Metric::new(
            format!("cp_ticks[{n}]"),
            "count",
            r.cp_ticks as f64,
        ));
        metrics.push(Metric::new(
            format!("demand_refreshes[{n}]"),
            "count",
            r.demand_refreshes as f64,
        ));
        metrics.push(Metric::new(
            format!("model_cache_hits[{n}]"),
            "count",
            r.cache_hits as f64,
        ));
        metrics.push(Metric::new(
            format!("model_cache_misses[{n}]"),
            "count",
            r.cache_misses as f64,
        ));
        metrics.push(Metric::new(
            format!("power_version[{n}]"),
            "count",
            r.power_version as f64,
        ));
        metrics.push(Metric::new(
            format!("governor_ghz[{n}]"),
            "ghz",
            r.governor_ghz,
        ));
        metrics.push(Metric::new(
            format!("requests_completed[{n}]"),
            "count",
            r.completed as f64,
        ));
    }
    (sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_size_is_deterministic_and_recovers() {
        let a = run_size(100, true, None);
        let b = run_size(100, true, None);
        assert_eq!(a.sim_events, b.sim_events);
        assert_eq!(a.cp_ticks, b.cp_ticks);
        assert_eq!(a.governor_ghz, b.governor_ghz);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert!(a.completed > 0);
        // The repair landed.
        assert_eq!(a.failed_end, 0);
    }

    #[test]
    fn demand_refreshes_stay_bounded_by_bins_not_fleet() {
        // The whole point: a 10k-domain fleet must not solve 10k
        // operating points. Refreshes count fleet-wide frequency
        // changes; each one batch-solves only the 4 bins, so misses
        // stay O(refreshes x bins) regardless of size.
        let r = run_size(1_000, true, None);
        assert!(r.demand_refreshes > 0, "governor actuated at least once");
        assert!(
            r.cache_misses <= (r.demand_refreshes + 1) * 4,
            "misses {} exceed refreshes {} x 4 bins",
            r.cache_misses,
            r.demand_refreshes
        );
    }

    #[test]
    fn control_decisions_are_size_independent() {
        // Per-domain floors, demands, and budget share are identical at
        // every size, so the governor must settle at the same frequency
        // — extra domains add rows, not different physics.
        let small = run_size(100, true, None);
        let large = run_size(1_000, true, None);
        assert_eq!(small.governor_ghz, large.governor_ghz);
        assert_eq!(small.cp_ticks, large.cp_ticks);
    }

    #[test]
    fn traced_record_matches_untraced() {
        let flight = ic_obs::flight::shared_flight(1 << 16);
        let plain = fleet_scale_record(true);
        let traced = fleet_scale_record_traced(true, &flight);
        assert_eq!(plain, traced, "tracing must not change the record");
        let rec = flight.borrow();
        assert!(rec.counts_by_kind().contains_key(&("controlplane", "tick")));
    }
}
