//! The composed control-plane experiment: every stock controller on
//! one clock.
//!
//! Runs [`ic_controlplane::FleetWorld`] under the full controller set —
//! the auto-scaler (ic-autoscale), priority power capping (ic-power),
//! the overclock governor (ic-core), a scripted server failure, and the
//! failover/virtual-buffer controller — each at its own cadence on the
//! [`ic_controlplane::ControlPlane`] scheduler. The run demonstrates
//! the paper's Section VI end-state: capping squeezes the batch
//! domain, the governor re-derives the safe frequency from its grant,
//! the ASC compensates with placement, and a mid-run server failure is
//! absorbed by boosting the survivors (Section V-B's virtual buffer).
//!
//! Everything derives from one seed; the run is a pure function of its
//! configuration, so records are byte-identical across worker counts.

use crate::report::Metric;
use ic_autoscale::asc::AutoScaler;
use ic_autoscale::policy::{AscConfig, Policy};
use ic_controlplane::controllers::{
    FailoverController, GovernorController, PowerCapController, ScriptController,
};
use ic_controlplane::{Action, ControlPlane, FleetConfig, FleetWorld, World};
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_obs::flight::FlightHandle;
use ic_obs::ObsSinks;
use ic_power::capping::PowerAllocator;
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::CompositeLifetimeModel;
use ic_reliability::stability::StabilityModel;
use ic_sim::rng::StreamVersion;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;

/// The workload seed shared by render and record paths.
const SEED: u64 = 42;

/// Cadences, seconds: the ASC decides fast; power/governor re-plan
/// slowly; fault script and failover watch in between.
const CAP_PERIOD_S: u64 = 30;
const WATCH_PERIOD_S: u64 = 15;

/// The tank governor for the composed fleet (the paper's 2PIC
/// HFE-7000 Skylake socket).
fn governor() -> OverclockGovernor {
    OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    )
}

/// Everything the render and the record report about one composed run.
struct ComposedRun {
    end_s: f64,
    fail_at_s: f64,
    repair_at_s: f64,
    p95_latency_s: f64,
    avg_latency_s: f64,
    completed: u64,
    sim_events: u64,
    cp_ticks: u64,
    vms_end: usize,
    parked_end: usize,
    failed_end: usize,
    /// `(domain, granted watts)` at the horizon, domain order.
    grants: Vec<(u64, f64)>,
    budget_w: f64,
    governor_ghz: f64,
    governor_binding: String,
    boost_engaged: bool,
}

/// Runs the composed experiment. `quick` halves the schedule dwell;
/// `flight` routes the control plane's tick instants (and the world's
/// sinks, were any attached) into the recorder without touching the
/// numbers.
fn composed_run(version: StreamVersion, quick: bool, flight: Option<&FlightHandle>) -> ComposedRun {
    let mut config = FleetConfig::small(SEED);
    config.rng_stream = version;
    if quick {
        config.schedule = config
            .schedule
            .iter()
            .map(|&(t, qps)| (t / 2.0, qps))
            .collect();
    }
    let dwell_s = if quick { 150.0 } else { 300.0 };
    let last_s = config.schedule.last().map(|&(t, _)| t).unwrap_or(0.0);
    let end_s = last_s + dwell_s;
    // The failure lands mid-ramp; the repair arrives one dwell later,
    // leaving a full window of degraded operation.
    let fail_at_s = 1.5 * dwell_s;
    let repair_at_s = 2.5 * dwell_s;
    let budget_w = config.budget_w;

    let asc_cfg = AscConfig::paper();
    let asc_period = SimDuration::from_secs_f64(asc_cfg.decision_period_s);
    let mut asc = AutoScaler::new(asc_cfg, Policy::OcA);
    if let Some(flight) = flight {
        asc.attach_sinks(ObsSinks::none().with_flight(flight.clone()));
    }

    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);
    if let Some(flight) = flight {
        plane.attach_sinks(ObsSinks::none().with_flight(flight.clone()));
    }
    let _asc_id = plane.register(Box::new(asc), asc_period);
    // Capping must precede the governor at shared instants so grants
    // land before the governor reads them.
    let cap_id = plane.register(
        Box::new(PowerCapController::new(PowerAllocator::new(budget_w))),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    let gov_id = plane.register(
        Box::new(GovernorController::new(
            governor(),
            Frequency::from_ghz(4.1),
            Frequency::from_ghz(3.4),
        )),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    let _script_id = plane.register(
        Box::new(ScriptController::new(vec![
            (
                SimTime::from_secs_f64(fail_at_s),
                Action::FailServer { server: 0 },
            ),
            (
                SimTime::from_secs_f64(repair_at_s),
                Action::RepairServer { server: 0 },
            ),
        ])),
        SimDuration::from_secs(WATCH_PERIOD_S),
    );
    let fo_id = plane.register(
        Box::new(FailoverController::new(1.2)),
        SimDuration::from_secs(WATCH_PERIOD_S),
    );

    plane.run_until(SimTime::from_secs_f64(end_s));

    let cp_ticks = plane.ticks_total();
    let decision = plane
        .controller::<GovernorController>(gov_id)
        .and_then(|g| g.last_decision().cloned())
        .expect("governor ticked at least once");
    let boost_engaged = plane
        .controller::<FailoverController>(fo_id)
        .map(|f| f.boosted())
        .unwrap_or(false);
    debug_assert!(plane.controller::<PowerCapController>(cap_id).is_some());

    let end = SimTime::from_secs_f64(end_s);
    let mut world = plane.into_world();
    // Latency stats straight off the completion log: the mean sums in
    // completion order and the P95 is one nearest-rank quickselect —
    // the exact values a `Tally` of the same stream reports, without
    // pushing ~half a million samples through its record path.
    let mut latencies: Vec<f64> = world
        .sim_mut()
        .take_completions()
        .into_iter()
        .map(|(_, lat)| lat)
        .collect();
    assert!(!latencies.is_empty(), "composed run completed no requests");
    let n = latencies.len();
    let avg_latency_s = latencies.iter().sum::<f64>() / n as f64;
    let rank = (((0.95 * n as f64).ceil() as usize).max(1) - 1).min(n - 1);
    let (_, &mut p95_latency_s, _) = latencies.select_nth_unstable_by(rank, f64::total_cmp);
    let snap_cluster = world
        .telemetry(end)
        .cluster
        .clone()
        .expect("fleet models placement");

    ComposedRun {
        end_s,
        fail_at_s,
        repair_at_s,
        p95_latency_s,
        avg_latency_s,
        completed: world.sim().completed_requests(),
        sim_events: world.sim().events_processed(),
        cp_ticks,
        vms_end: world.sim().active_vms().len(),
        parked_end: world.parked().len(),
        failed_end: snap_cluster.failed_servers.len(),
        grants: world.grants().iter().map(|(&d, &w)| (d, w)).collect(),
        budget_w,
        governor_ghz: decision.frequency.ghz(),
        governor_binding: format!("{:?}", decision.binding),
        boost_engaged,
    }
}

/// The composed experiment's human-readable report.
///
/// `version` selects the workload sampler stream:
/// [`StreamVersion::V1`] reproduces the registry's historical
/// `composed` record byte-for-byte, [`StreamVersion::V2`] runs the
/// same control-plane composition on the buffered ziggurat fast path
/// (the `composed_v2` registry entry).
pub fn composed(version: StreamVersion, quick: bool) -> String {
    let r = composed_run(version, quick, None);
    let mut out =
        String::from("== Composed control plane: ASC + capping + governor + failover ==\n");
    out.push_str(&format!(
        "controllers: asc (3 s), powercap ({CAP_PERIOD_S} s), governor ({CAP_PERIOD_S} s), \
         script ({WATCH_PERIOD_S} s), failover ({WATCH_PERIOD_S} s); horizon {:.0} s\n",
        r.end_s
    ));
    out.push_str(&format!(
        "injected: server 0 fails at {:.0} s, repaired at {:.0} s\n",
        r.fail_at_s, r.repair_at_s
    ));
    out.push_str(&format!(
        "requests: {} completed, P95 {:.1} ms, mean {:.1} ms\n",
        r.completed,
        r.p95_latency_s * 1e3,
        r.avg_latency_s * 1e3
    ));
    out.push_str(&format!("power budget {:.0} W:", r.budget_w));
    for (domain, watts) in &r.grants {
        out.push_str(&format!(" domain {domain} -> {watts:.0} W;"));
    }
    out.push('\n');
    out.push_str(&format!(
        "governor: {:.2} GHz on the squeezed grant (binding: {})\n",
        r.governor_ghz, r.governor_binding
    ));
    out.push_str(&format!(
        "end state: {} serving VMs, {} parked, {} failed servers, survivor boost {}\n",
        r.vms_end,
        r.parked_end,
        r.failed_end,
        if r.boost_engaged {
            "engaged"
        } else {
            "released"
        }
    ));
    out.push_str(&format!("control ticks: {}\n", r.cp_ticks));
    out
}

/// Structured record for `run_all --json`.
pub fn composed_record(version: StreamVersion, quick: bool) -> (u64, Vec<Metric>) {
    composed_record_with(version, quick, None)
}

/// [`composed_record`] with flight recording: the control plane's tick
/// instants and the ASC's decision events land in `flight`; the record
/// itself is byte-identical to the untraced one.
pub fn composed_record_traced(
    version: StreamVersion,
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<Metric>) {
    composed_record_with(version, quick, Some(flight))
}

fn composed_record_with(
    version: StreamVersion,
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<Metric>) {
    let r = composed_run(version, quick, flight);
    let mut metrics = vec![
        Metric::new("p95_latency_s", "seconds", r.p95_latency_s),
        Metric::new("requests_completed", "count", r.completed as f64),
        Metric::new("cp_ticks", "count", r.cp_ticks as f64),
        Metric::new("governor_ghz", "ghz", r.governor_ghz),
        Metric::new("vms_end", "count", r.vms_end as f64),
        Metric::new("parked_end", "count", r.parked_end as f64),
        Metric::new("failed_servers_end", "count", r.failed_end as f64),
    ];
    for (domain, watts) in &r.grants {
        metrics.push(Metric::new(format!("granted_w[{domain}]"), "watts", *watts));
    }
    (r.sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_run_is_deterministic_and_recovers() {
        for version in [StreamVersion::V1, StreamVersion::V2] {
            let a = composed_run(version, true, None);
            let b = composed_run(version, true, None);
            assert_eq!(a.p95_latency_s, b.p95_latency_s);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.sim_events, b.sim_events);
            assert_eq!(a.cp_ticks, b.cp_ticks);
            // The repair landed: no failed servers, no stranded VMs,
            // boost released.
            assert_eq!(a.failed_end, 0);
            assert_eq!(a.parked_end, 0);
            assert!(!a.boost_engaged);
            assert!(a.completed > 0);
            assert!(a.p95_latency_s > 0.0);
        }
    }

    #[test]
    fn v2_reproduces_the_same_steady_state_physics() {
        // The streams differ, so exact values do — but the composed
        // end-state (a throughput-bound fleet under the same capping
        // squeeze) must land in the same place.
        let v1 = composed_run(StreamVersion::V1, true, None);
        let v2 = composed_run(StreamVersion::V2, true, None);
        let rel = (v2.completed as f64 - v1.completed as f64).abs() / v1.completed as f64;
        assert!(rel < 0.01, "completed differ by {rel}");
        assert_eq!(v1.grants.len(), v2.grants.len());
        assert_eq!(v1.failed_end, v2.failed_end);
    }

    #[test]
    fn capping_squeezes_the_batch_domain() {
        let r = composed_run(StreamVersion::V1, true, None);
        assert_eq!(r.grants.len(), 2);
        let (critical, batch) = (r.grants[0].1, r.grants[1].1);
        assert!(critical > batch, "critical {critical} vs batch {batch}");
        assert!(critical + batch <= r.budget_w + 1e-9);
    }

    #[test]
    fn traced_record_matches_untraced() {
        let flight = ic_obs::flight::shared_flight(1 << 16);
        let plain = composed_record(StreamVersion::V1, true);
        let traced = composed_record_traced(StreamVersion::V1, true, &flight);
        assert_eq!(plain, traced, "tracing must not change the record");
        let rec = flight.borrow();
        assert!(rec.counts_by_kind().contains_key(&("controlplane", "tick")));
    }
}
