//! The composed control-plane experiment: every stock controller on
//! one clock.
//!
//! Runs [`ic_controlplane::FleetWorld`] under the full controller set —
//! the auto-scaler (ic-autoscale), priority power capping (ic-power),
//! the overclock governor (ic-core), a scripted server failure, and the
//! failover/virtual-buffer controller — each at its own cadence on the
//! [`ic_controlplane::ControlPlane`] scheduler. The run demonstrates
//! the paper's Section VI end-state: capping squeezes the batch
//! domain, the governor re-derives the safe frequency from its grant,
//! the ASC compensates with placement, and a mid-run server failure is
//! absorbed by boosting the survivors (Section V-B's virtual buffer).
//!
//! Everything derives from one seed; the run is a pure function of its
//! configuration, so records are byte-identical across worker counts.

use crate::report::Metric;
use ic_autoscale::asc::AutoScaler;
use ic_autoscale::policy::{AscConfig, Policy};
use ic_chaos::{
    ChaosController, DegradationController, DegradationPolicy, FaultProcess, LatencySlo, SloInputs,
    SloScorecard, StalledController,
};
use ic_controlplane::controllers::{
    FailoverController, GovernorController, PowerCapController, ScriptController,
};
use ic_controlplane::{
    Action, ControlPlane, Controller, ControllerId, FaultPlan, FleetConfigBuilder, FleetWorld,
    World,
};
use ic_core::governor::{GovernorConfig, OverclockGovernor};
use ic_obs::flight::FlightHandle;
use ic_obs::ObsSinks;
use ic_power::capping::PowerAllocator;
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::CompositeLifetimeModel;
use ic_reliability::stability::StabilityModel;
use ic_scenario::FaultConfig;
use ic_sim::rng::StreamVersion;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::fluid::DielectricFluid;
use ic_thermal::junction::ThermalInterface;

/// The workload seed shared by render and record paths.
const SEED: u64 = 42;

/// Cadences, seconds: the ASC decides fast; power/governor re-plan
/// slowly; fault script and failover watch in between.
const CAP_PERIOD_S: u64 = 30;
const WATCH_PERIOD_S: u64 = 15;

/// The tank governor for the composed fleet (the paper's 2PIC
/// HFE-7000 Skylake socket).
fn governor() -> OverclockGovernor {
    OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    )
}

/// Per-fleet chaos overrides for [`composed_run_with`]: swaps the
/// scripted single failure for the wear-coupled fault process plus the
/// degradation controller, and schedules the scenario's exogenous
/// control-plane faults (frozen telemetry, sensor dropouts, stalls).
pub(crate) struct ChaosSetup {
    pub(crate) faults: FaultConfig,
    pub(crate) requested_ghz: f64,
    /// The service-life target the governor trades frequency against —
    /// the paper's overclocked configs buy their headroom by shortening
    /// this (Section IV).
    pub(crate) target_lifetime_years: f64,
    pub(crate) budget_w: f64,
    /// Per-domain power ask — overclocking needs the headroom actually
    /// requested, or the allocator's grant power-binds the governor.
    pub(crate) domain_demand_w: f64,
    pub(crate) voltage_offset_v: f64,
    /// The *true* stability envelope driving the fault process's
    /// correctable-error rate.
    pub(crate) stability: StabilityModel,
    /// The envelope the governor *believes* — the overclocked fleet's
    /// operator validates a laxer characterization, and the gap between
    /// claimed and true envelope is what the chaos run measures.
    pub(crate) governor_stability: StabilityModel,
    pub(crate) policy: DegradationPolicy,
    pub(crate) slo: LatencySlo,
    /// The auto-scaler strategy: the baseline fleet scales out at fixed
    /// frequency, the overclocked fleet runs OC-A with its selectable
    /// bins capped at the governor's grant — otherwise the ASC, not the
    /// governor, decides how hot the fleet runs.
    pub(crate) asc_policy: Policy,
}

/// What a chaos-enabled run reports on top of [`ComposedRun`].
pub(crate) struct ChaosOutcome {
    pub(crate) scorecard: SloScorecard,
    pub(crate) stalled_ticks: u64,
    pub(crate) deocs: u32,
    pub(crate) drains: u32,
    pub(crate) injected_failures: u64,
    pub(crate) injected_bursts: u64,
}

/// Everything the render and the record report about one composed run.
pub(crate) struct ComposedRun {
    pub(crate) end_s: f64,
    pub(crate) fail_at_s: f64,
    pub(crate) repair_at_s: f64,
    pub(crate) p95_latency_s: f64,
    pub(crate) avg_latency_s: f64,
    pub(crate) completed: u64,
    pub(crate) sim_events: u64,
    pub(crate) cp_ticks: u64,
    pub(crate) vms_end: usize,
    pub(crate) parked_end: usize,
    pub(crate) failed_end: usize,
    /// `(domain, granted watts)` at the horizon, domain order.
    pub(crate) grants: Vec<(u64, f64)>,
    pub(crate) budget_w: f64,
    pub(crate) governor_ghz: f64,
    pub(crate) governor_binding: String,
    pub(crate) boost_engaged: bool,
    pub(crate) chaos: Option<ChaosOutcome>,
}

/// Wraps `ctl` in a [`StalledController`] when the chaos scenario
/// names it; the default path hands the box back untouched.
fn wrap_stalled(ctl: Box<dyn Controller>, chaos: Option<&ChaosSetup>) -> Box<dyn Controller> {
    let Some(setup) = chaos else { return ctl };
    let windows: Vec<ic_scenario::FaultWindow> = setup
        .faults
        .stalled_controllers
        .iter()
        .filter(|s| s.controller == ctl.name())
        .map(|s| s.window)
        .collect();
    if windows.is_empty() {
        ctl
    } else {
        Box::new(StalledController::from_windows(ctl, &windows))
    }
}

/// Looks up a registered controller that the stall fault may have
/// wrapped: try the direct downcast first, then through the wrapper.
fn controller_as<T: 'static>(plane: &ControlPlane<FleetWorld>, id: ControllerId) -> Option<&T> {
    plane.controller::<T>(id).or_else(|| {
        plane
            .controller::<StalledController>(id)
            .and_then(|s| s.inner_as::<T>())
    })
}

/// Runs the composed experiment. `quick` halves the schedule dwell;
/// `flight` routes the control plane's tick instants (and the world's
/// sinks, were any attached) into the recorder without touching the
/// numbers.
fn composed_run(version: StreamVersion, quick: bool, flight: Option<&FlightHandle>) -> ComposedRun {
    composed_run_with(version, quick, flight, None)
}

/// [`composed_run`] with an optional chaos setup. `chaos: None` is the
/// stock composed pipeline, bit for bit; `chaos: Some` replaces the
/// scripted failure with the wear-coupled [`ChaosController`] +
/// [`DegradationController`] pair in the same registration slot and
/// schedules the scenario's exogenous control-plane faults.
pub(crate) fn composed_run_with(
    version: StreamVersion,
    quick: bool,
    flight: Option<&FlightHandle>,
    chaos: Option<&ChaosSetup>,
) -> ComposedRun {
    let mut config = FleetConfigBuilder::small(SEED).build();
    config.rng_stream = version;
    if quick {
        config.schedule = config
            .schedule
            .iter()
            .map(|&(t, qps)| (t / 2.0, qps))
            .collect();
    }
    let dwell_s = if quick { 150.0 } else { 300.0 };
    let last_s = config.schedule.last().map(|&(t, _)| t).unwrap_or(0.0);
    let end_s = last_s + dwell_s;
    // The failure lands mid-ramp; the repair arrives one dwell later,
    // leaving a full window of degraded operation.
    let fail_at_s = 1.5 * dwell_s;
    let repair_at_s = 2.5 * dwell_s;
    if let Some(setup) = chaos {
        config.budget_w = setup.budget_w;
        for domain in &mut config.domains {
            domain.demand_w = setup.domain_demand_w;
        }
        config.faults = Some(setup.faults.clone());
    }
    let budget_w = config.budget_w;
    let servers = config.servers;

    let requested_ghz = chaos.map_or(4.1, |c| c.requested_ghz);
    let gov = match chaos {
        None => governor(),
        Some(setup) => OverclockGovernor::new(
            CpuSku::skylake_8180(),
            ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
            CompositeLifetimeModel::fitted_5nm(),
            setup.governor_stability,
            GovernorConfig {
                target_lifetime_years: setup.target_lifetime_years,
                ..GovernorConfig::default()
            },
        ),
    };
    // The ratio the failover restores to when the fleet heals: base for
    // the stock run, the governor's unconstrained-power grant under
    // chaos — the governor only re-issues on change, so a restore to
    // base would silently de-overclock the fleet for the rest of the
    // run after the first repair.
    let restore_ratio = match chaos {
        None => 1.0,
        Some(setup) => gov
            .decide(Frequency::from_ghz(setup.requested_ghz), setup.budget_w)
            .frequency
            .ratio_to(Frequency::from_ghz(3.4)),
    };

    let mut asc_cfg = AscConfig::paper();
    if chaos.is_some() {
        // The operator configures the ASC with the same envelope the
        // governor validated: selectable bins stop at the grant.
        asc_cfg.freq_ratios.retain(|&r| r <= restore_ratio + 1e-9);
        if asc_cfg.freq_ratios.is_empty() {
            asc_cfg.freq_ratios.push(1.0);
        }
    }
    let asc_policy = chaos.map_or(Policy::OcA, |c| c.asc_policy);
    let asc_period = SimDuration::from_secs_f64(asc_cfg.decision_period_s);
    let mut asc = AutoScaler::new(asc_cfg, asc_policy);
    if let Some(flight) = flight {
        asc.attach_sinks(ObsSinks::none().with_flight(flight.clone()));
    }

    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);
    if let Some(flight) = flight {
        plane.attach_sinks(ObsSinks::none().with_flight(flight.clone()));
    }
    let _asc_id = plane.register(Box::new(asc), asc_period);
    // Capping must precede the governor at shared instants so grants
    // land before the governor reads them.
    let cap_id = plane.register(
        wrap_stalled(
            Box::new(PowerCapController::new(PowerAllocator::new(budget_w))),
            chaos,
        ),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    let gov_id = plane.register(
        wrap_stalled(
            Box::new(GovernorController::new(
                gov,
                Frequency::from_ghz(requested_ghz),
                Frequency::from_ghz(3.4),
            )),
            chaos,
        ),
        SimDuration::from_secs(CAP_PERIOD_S),
    );
    let mut chaos_ids: Option<(ControllerId, ControllerId)> = None;
    match chaos {
        None => {
            let _script_id = plane.register(
                Box::new(
                    ScriptController::new(vec![
                        (
                            SimTime::from_secs_f64(fail_at_s),
                            Action::FailServer { server: 0 },
                        ),
                        (
                            SimTime::from_secs_f64(repair_at_s),
                            Action::RepairServer { server: 0 },
                        ),
                    ])
                    .expect("script events are time-sorted"),
                ),
                SimDuration::from_secs(WATCH_PERIOD_S),
            );
        }
        Some(setup) => {
            let process = FaultProcess::new(
                setup.faults.clone(),
                servers,
                CompositeLifetimeModel::fitted_5nm(),
                setup.stability,
            );
            let chaos_id = plane.register(
                Box::new(ChaosController::new(
                    process,
                    CpuSku::skylake_8180(),
                    ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
                    Frequency::from_ghz(3.4),
                    setup.voltage_offset_v,
                )),
                SimDuration::from_secs(WATCH_PERIOD_S),
            );
            let deg_id = plane.register(
                Box::new(DegradationController::new(setup.policy)),
                SimDuration::from_secs(WATCH_PERIOD_S),
            );
            chaos_ids = Some((chaos_id, deg_id));
        }
    }
    // The stock run boosts survivors by the paper's full +20 % virtual
    // buffer; the chaos fleets run the conservative +10 % setting — the
    // wear process is live, and the full buffer sits deep in the true
    // envelope's error-growth region.
    let boost_ratio = if chaos.is_some() { 1.1 } else { 1.2 };
    let fo_id = plane.register(
        wrap_stalled(
            Box::new(FailoverController::with_restore(boost_ratio, restore_ratio)),
            chaos,
        ),
        SimDuration::from_secs(WATCH_PERIOD_S),
    );
    if let Some(setup) = chaos {
        let mut entries: Vec<(SimTime, Action)> = Vec::new();
        for w in &setup.faults.stale_telemetry {
            entries.push((
                SimTime::from_secs_f64(w.from_s),
                Action::FreezeTelemetry {
                    until: SimTime::from_secs_f64(w.until_s),
                },
            ));
        }
        for d in &setup.faults.sensor_dropouts {
            entries.push((
                SimTime::from_secs_f64(d.window.from_s),
                Action::DropVmSensor {
                    vm: d.vm,
                    until: SimTime::from_secs_f64(d.window.until_s),
                },
            ));
        }
        if !entries.is_empty() {
            plane.schedule_faults(FaultPlan::new(entries));
        }
    }

    plane.run_until(SimTime::from_secs_f64(end_s));

    let cp_ticks = plane.ticks_total();
    let decision = controller_as::<GovernorController>(&plane, gov_id)
        .and_then(|g| g.last_decision().cloned())
        .expect("governor ticked at least once");
    let boost_engaged = controller_as::<FailoverController>(&plane, fo_id)
        .map(|f| f.boosted())
        .unwrap_or(false);
    debug_assert!(controller_as::<PowerCapController>(&plane, cap_id).is_some());
    let chaos_counts = chaos_ids.map(|(chaos_id, deg_id)| {
        let (failures, bursts) = controller_as::<ChaosController>(&plane, chaos_id)
            .map(|c| (c.failures_injected(), c.bursts_injected()))
            .unwrap_or((0, 0));
        let (deocs, drains) = controller_as::<DegradationController>(&plane, deg_id)
            .map(|d| (d.deocs(), d.drains()))
            .unwrap_or((0, 0));
        let stalled_ticks: u64 = [cap_id, gov_id, fo_id]
            .into_iter()
            .filter_map(|id| plane.controller::<StalledController>(id))
            .map(|s| s.stalled_ticks())
            .sum();
        (failures, bursts, deocs, drains, stalled_ticks)
    });

    let end = SimTime::from_secs_f64(end_s);
    let mut world = plane.into_world();
    // Latency stats straight off the completion log: the mean sums in
    // completion order and the P95 is one nearest-rank quickselect —
    // the exact values a `Tally` of the same stream reports, without
    // pushing ~half a million samples through its record path.
    let completions = world.sim_mut().take_completions();
    let mut latencies: Vec<f64> = completions.iter().map(|&(_, lat)| lat).collect();
    assert!(!latencies.is_empty(), "composed run completed no requests");
    let n = latencies.len();
    let avg_latency_s = latencies.iter().sum::<f64>() / n as f64;
    let rank = (((0.95 * n as f64).ceil() as usize).max(1) - 1).min(n - 1);
    let (_, &mut p95_latency_s, _) = latencies.select_nth_unstable_by(rank, f64::total_cmp);
    let snap = world.telemetry(end);
    let snap_cluster = snap.cluster.clone().expect("fleet models placement");
    let snap_faults = snap.faults.clone();

    let chaos_outcome = chaos.map(|setup| {
        let (injected_failures, injected_bursts, deocs, drains, stalled_ticks) =
            chaos_counts.unwrap_or((0, 0, 0, 0, 0));
        let (error_bursts, errors_total) = snap_faults
            .as_ref()
            .map(|f| (f.error_bursts, f.errors_by_server.iter().sum::<u64>()))
            .unwrap_or((0, 0));
        let completions_s: Vec<(f64, f64)> = completions
            .iter()
            .map(|&(t, lat)| (t.as_secs_f64(), lat))
            .collect();
        let inputs = SloInputs {
            completions: &completions_s,
            horizon_s: end_s,
            availability: world.availability(end),
            failures: world.failures_applied(),
            recovered_vms: world.recovered_vms(),
            error_bursts,
            errors_total,
        };
        ChaosOutcome {
            scorecard: SloScorecard::compute(&inputs, &setup.slo),
            stalled_ticks,
            deocs,
            drains,
            injected_failures,
            injected_bursts,
        }
    });

    ComposedRun {
        end_s,
        fail_at_s,
        repair_at_s,
        p95_latency_s,
        avg_latency_s,
        completed: world.sim().completed_requests(),
        sim_events: world.sim().events_processed(),
        cp_ticks,
        vms_end: world.sim().active_vms().len(),
        parked_end: world.parked().len(),
        failed_end: snap_cluster.failed_servers.len(),
        grants: world.grants().iter().map(|(&d, &w)| (d, w)).collect(),
        budget_w,
        governor_ghz: decision.frequency.ghz(),
        governor_binding: format!("{:?}", decision.binding),
        boost_engaged,
        chaos: chaos_outcome,
    }
}

/// The composed experiment's human-readable report.
///
/// `version` selects the workload sampler stream:
/// [`StreamVersion::V1`] reproduces the registry's historical
/// `composed` record byte-for-byte, [`StreamVersion::V2`] runs the
/// same control-plane composition on the buffered ziggurat fast path
/// (the `composed_v2` registry entry).
pub fn composed(version: StreamVersion, quick: bool) -> String {
    let r = composed_run(version, quick, None);
    let mut out =
        String::from("== Composed control plane: ASC + capping + governor + failover ==\n");
    out.push_str(&format!(
        "controllers: asc (3 s), powercap ({CAP_PERIOD_S} s), governor ({CAP_PERIOD_S} s), \
         script ({WATCH_PERIOD_S} s), failover ({WATCH_PERIOD_S} s); horizon {:.0} s\n",
        r.end_s
    ));
    out.push_str(&format!(
        "injected: server 0 fails at {:.0} s, repaired at {:.0} s\n",
        r.fail_at_s, r.repair_at_s
    ));
    out.push_str(&format!(
        "requests: {} completed, P95 {:.1} ms, mean {:.1} ms\n",
        r.completed,
        r.p95_latency_s * 1e3,
        r.avg_latency_s * 1e3
    ));
    out.push_str(&format!("power budget {:.0} W:", r.budget_w));
    for (domain, watts) in &r.grants {
        out.push_str(&format!(" domain {domain} -> {watts:.0} W;"));
    }
    out.push('\n');
    out.push_str(&format!(
        "governor: {:.2} GHz on the squeezed grant (binding: {})\n",
        r.governor_ghz, r.governor_binding
    ));
    out.push_str(&format!(
        "end state: {} serving VMs, {} parked, {} failed servers, survivor boost {}\n",
        r.vms_end,
        r.parked_end,
        r.failed_end,
        if r.boost_engaged {
            "engaged"
        } else {
            "released"
        }
    ));
    out.push_str(&format!("control ticks: {}\n", r.cp_ticks));
    out
}

/// Structured record for `run_all --json`.
pub fn composed_record(version: StreamVersion, quick: bool) -> (u64, Vec<Metric>) {
    composed_record_with(version, quick, None)
}

/// [`composed_record`] with flight recording: the control plane's tick
/// instants and the ASC's decision events land in `flight`; the record
/// itself is byte-identical to the untraced one.
pub fn composed_record_traced(
    version: StreamVersion,
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<Metric>) {
    composed_record_with(version, quick, Some(flight))
}

fn composed_record_with(
    version: StreamVersion,
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<Metric>) {
    record_from_run(&composed_run(version, quick, flight))
}

/// Assembles the composed record from a finished run. Shared with the
/// chaos experiment's zero-fault differential test, which pins that
/// [`composed_run_with`] without a chaos setup reproduces this record
/// byte-for-byte.
pub(crate) fn record_from_run(r: &ComposedRun) -> (u64, Vec<Metric>) {
    let mut metrics = vec![
        Metric::new("p95_latency_s", "seconds", r.p95_latency_s),
        Metric::new("requests_completed", "count", r.completed as f64),
        Metric::new("cp_ticks", "count", r.cp_ticks as f64),
        Metric::new("governor_ghz", "ghz", r.governor_ghz),
        Metric::new("vms_end", "count", r.vms_end as f64),
        Metric::new("parked_end", "count", r.parked_end as f64),
        Metric::new("failed_servers_end", "count", r.failed_end as f64),
    ];
    for (domain, watts) in &r.grants {
        metrics.push(Metric::new(format!("granted_w[{domain}]"), "watts", *watts));
    }
    (r.sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_run_is_deterministic_and_recovers() {
        for version in [StreamVersion::V1, StreamVersion::V2] {
            let a = composed_run(version, true, None);
            let b = composed_run(version, true, None);
            assert_eq!(a.p95_latency_s, b.p95_latency_s);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.sim_events, b.sim_events);
            assert_eq!(a.cp_ticks, b.cp_ticks);
            // The repair landed: no failed servers, no stranded VMs,
            // boost released.
            assert_eq!(a.failed_end, 0);
            assert_eq!(a.parked_end, 0);
            assert!(!a.boost_engaged);
            assert!(a.completed > 0);
            assert!(a.p95_latency_s > 0.0);
        }
    }

    #[test]
    fn v2_reproduces_the_same_steady_state_physics() {
        // The streams differ, so exact values do — but the composed
        // end-state (a throughput-bound fleet under the same capping
        // squeeze) must land in the same place.
        let v1 = composed_run(StreamVersion::V1, true, None);
        let v2 = composed_run(StreamVersion::V2, true, None);
        let rel = (v2.completed as f64 - v1.completed as f64).abs() / v1.completed as f64;
        assert!(rel < 0.01, "completed differ by {rel}");
        assert_eq!(v1.grants.len(), v2.grants.len());
        assert_eq!(v1.failed_end, v2.failed_end);
    }

    #[test]
    fn capping_squeezes_the_batch_domain() {
        let r = composed_run(StreamVersion::V1, true, None);
        assert_eq!(r.grants.len(), 2);
        let (critical, batch) = (r.grants[0].1, r.grants[1].1);
        assert!(critical > batch, "critical {critical} vs batch {batch}");
        assert!(critical + batch <= r.budget_w + 1e-9);
    }

    #[test]
    fn traced_record_matches_untraced() {
        let flight = ic_obs::flight::shared_flight(1 << 16);
        let plain = composed_record(StreamVersion::V1, true);
        let traced = composed_record_traced(StreamVersion::V1, true, &flight);
        assert_eq!(plain, traced, "tracing must not change the record");
        let rec = flight.borrow();
        assert!(rec.counts_by_kind().contains_key(&("controlplane", "tick")));
    }
}
