//! Figure regeneration (Figures 4–13, 15, 16).

use crate::{cell, table};
use ic_autoscale::policy::Policy;
use ic_autoscale::runner::{ramp_schedule, run_batch, run_batch_traced, Runner, RunnerConfig};
use ic_core::domains::OperatingDomains;
use ic_core::usecases::buffer::{static_buffer_servers, virtual_buffer_servers};
use ic_core::usecases::capacity::{CapacitySnapshot, CapacityTimeline};
use ic_core::usecases::highperf::VmPerformanceClass;
use ic_core::usecases::packing::plan_packing;
use ic_obs::flight::FlightHandle;
use ic_sim::series::merge_csv;
use ic_workloads::configs::CpuConfig;
use ic_workloads::gpu::figure11_sweep;
use ic_workloads::mix::figure13_sweep;
use ic_workloads::perfmodel::{figure9_sweep, time_ratio};
use ic_workloads::queueing::MgkQueue;
use ic_workloads::stream::figure10_sweep;

/// Figure 4: operating domains (guaranteed / turbo / overclocking /
/// non-operating) for the air-cooled and immersed platforms.
pub fn fig4() -> String {
    let mut rows = Vec::new();
    for (label, d) in [
        ("Air-cooled", OperatingDomains::skylake_air()),
        ("2PIC HFE-7000", OperatingDomains::skylake_2pic_hfe()),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{}-{}", d.minimum(), d.base()),
            format!("{}-{}", d.base(), d.turbo()),
            if d.green_top() > d.turbo() {
                format!("{}-{}", d.turbo(), d.green_top())
            } else {
                "-".to_string()
            },
            if d.ceiling() > d.green_top() {
                format!("{}-{}", d.green_top(), d.ceiling())
            } else {
                "-".to_string()
            },
            format!("> {}", d.ceiling()),
        ]);
    }
    let mut out = table(
        "Figure 4: operating domains",
        &[
            "Platform",
            "Guaranteed",
            "Turbo",
            "OC green",
            "OC red",
            "Non-operating",
        ],
        &rows,
    );
    // The opportunistic-turbo staircase behind the figure: max per-core
    // frequency vs active cores, air vs 2PIC, derived from the socket
    // power model.
    use ic_power::cpu::CpuSku;
    use ic_power::turbo::TurboTable;
    use ic_power::units::Frequency;
    use ic_thermal::fluid::DielectricFluid;
    use ic_thermal::junction::ThermalInterface;
    let sku = CpuSku::skylake_8180();
    let cap = Frequency::from_ghz(3.8);
    let air = TurboTable::derive(
        &sku,
        &ThermalInterface::air(35.0, 12.1, 0.21),
        sku.tdp_w(),
        cap,
    );
    let tank = TurboTable::derive(
        &sku,
        &ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
        sku.tdp_w(),
        cap,
    );
    out.push_str("\nTurbo staircase (max GHz vs active cores):\nactive  air   2PIC\n");
    for n in [1u32, 4, 8, 12, 16, 20, 24, 28] {
        out.push_str(&format!(
            "{n:>6}  {:.1}   {:.1}\n",
            air.frequency_for(n).ghz(),
            tank.frequency_for(n).ghz()
        ));
    }
    out
}

/// Figure 5: what immersion's extra bands buy — high-performance VM
/// entitlements and oversubscribed packing.
pub fn fig5() -> String {
    let domains = OperatingDomains::skylake_2pic_hfe();
    let mut rows = Vec::new();
    for class in [
        VmPerformanceClass::Regular,
        VmPerformanceClass::Turbo,
        VmPerformanceClass::HighPerformance,
    ] {
        rows.push(vec![
            format!("{class:?}"),
            format!("{}", class.entitled_frequency(&domains)),
            cell(class.price_multiplier(&domains), 2),
        ]);
    }
    let mut out = table(
        "Figure 5: high-performance VM classes (immersion bands)",
        &["VM class", "Entitled frequency", "Price multiplier"],
        &rows,
    );
    let plan =
        plan_packing(domains.turbo(), domains.green_top(), 1.20).expect("within green headroom");
    out.push_str(&format!(
        "Dense packing: +{} vcores per 100 pcores, compensated at {}\n",
        plan.extra_vcores_per_100_pcores, plan.compensating_frequency
    ));
    out
}

/// Figure 6: buffers with and without overclocking.
pub fn fig6() -> String {
    let mut rows = Vec::new();
    for (fleet, failures) in [(10u32, 1u32), (24, 2), (48, 4), (100, 8)] {
        rows.push(vec![
            format!("{fleet} servers, {failures} failures"),
            format!("{}", static_buffer_servers(failures)),
            format!("{}", virtual_buffer_servers(fleet, failures, 1.22)),
        ]);
    }
    table(
        "Figure 6: static vs virtual (overclock-backed) buffers",
        &[
            "Fleet / tolerated failures",
            "Static spares",
            "Virtual spares",
        ],
        &rows,
    )
}

/// Figure 7: capacity-crisis gap bridging.
pub fn fig7() -> String {
    let timeline = CapacityTimeline::new(vec![
        CapacitySnapshot {
            demand_vcores: 80_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 105_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 118_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 126_000.0,
            supply_vcores: 150_000.0,
        },
    ]);
    let rows: Vec<Vec<String>> = timeline
        .periods()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                format!("Q{}", i + 1),
                cell(p.demand_vcores, 0),
                cell(p.supply_vcores, 0),
                cell(p.gap_vcores(), 0),
                cell(p.residual_gap(1.22, 1.15), 0),
            ]
        })
        .collect();
    let mut out = table(
        "Figure 7: capacity crisis (vcores)",
        &["Quarter", "Demand", "Supply", "Gap w/o OC", "Gap with OC"],
        &rows,
    );
    let (without, with) = timeline.denied_vcore_periods(1.22, 1.15);
    out.push_str(&format!(
        "Denied vcore-quarters: {without:.0} without overclocking, {with:.0} with\n"
    ));
    out
}

/// Figure 8: the scale-up-then-out timeline — OC-E hides the scale-out
/// latency, OC-A postpones the scale-out.
pub fn fig8(quick: bool) -> String {
    fig8_with(quick, None)
}

/// [`fig8`] with flight recording: the three policy runs record into
/// `flight` (submission order, see
/// [`ic_autoscale::runner::run_batch_traced`]); the rendered figure is
/// byte-identical to the untraced one. Returns the default line-count
/// record so traced and untraced `run_all` reports match.
pub fn fig8_traced(quick: bool, flight: &FlightHandle) -> (u64, Vec<crate::report::Metric>) {
    let out = fig8_with(quick, Some(flight));
    (
        0,
        vec![crate::report::Metric::new(
            "output_lines",
            "count",
            out.lines().count() as f64,
        )],
    )
}

fn fig8_with(quick: bool, flight: Option<&FlightHandle>) -> String {
    let mut config = RunnerConfig::paper();
    config.schedule = vec![(0.0, 500.0), (300.0, if quick { 900.0 } else { 1000.0 })];
    config.tail_s = 300.0;
    let mut out = String::from("== Figure 8: hiding vs avoiding the scale-out ==\n");
    let tasks: Vec<_> = [Policy::Baseline, Policy::OcE, Policy::OcA]
        .into_iter()
        .map(|policy| (config.clone(), policy, 42))
        .collect();
    let results = match flight {
        Some(flight) => run_batch_traced(tasks, flight),
        None => run_batch(tasks),
    };
    for r in results {
        let f_peak = r.frequency_pct.max().unwrap_or(0.0);
        let final_vms = r.vm_count.points().last().map(|&(_, v)| v).unwrap_or(0.0);
        out.push_str(&format!(
            "{:9}: peak frequency {:>5.1}% of range, final VMs {:.0}, P95 {:>6.2} ms\n",
            r.policy,
            f_peak,
            final_vms,
            r.p95_latency_s * 1e3
        ));
    }
    out
}

/// Figure 9: per-application normalized metric and power, B2 vs OC1–3.
pub fn fig9() -> String {
    let sweep = figure9_sweep();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .filter(|p| p.config != "B2")
        .map(|p| {
            vec![
                p.app.to_string(),
                p.config.to_string(),
                cell(p.normalized_metric, 3),
                format!("{:+.1}%", p.improvement_pct),
                format!("{:.0} W", p.avg_power_w),
                format!("{:.0} W", p.p99_power_w),
            ]
        })
        .collect();
    table(
        "Figure 9: cloud workloads under overclocking (vs B2)",
        &[
            "App",
            "Config",
            "Norm metric",
            "Improvement",
            "Avg power",
            "P99 power",
        ],
        &rows,
    )
}

/// Figure 10: STREAM sustainable bandwidth and power across configs.
pub fn fig10() -> String {
    let sweep = figure10_sweep();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.config.to_string(),
                p.kernel.to_string(),
                format!("{:.0} MB/s", p.bandwidth_mbps),
                format!("{:.0} W", p.avg_power_w),
            ]
        })
        .collect();
    table(
        "Figure 10: STREAM bandwidth",
        &["Config", "Kernel", "Bandwidth", "Avg power"],
        &rows,
    )
}

/// Figure 11: VGG training time and power under GPU overclocking.
pub fn fig11() -> String {
    let sweep = figure11_sweep();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.model.to_string(),
                p.config.to_string(),
                cell(p.normalized_time, 3),
                format!("{:.0} W", p.p99_power_w),
            ]
        })
        .collect();
    table(
        "Figure 11: VGG training under GPU overclocking",
        &["Model", "Config", "Norm time", "P99 power"],
        &rows,
    )
}

/// Figure 12: average P95 latency of 4 SQL VMs versus assigned pcores,
/// B2 vs OC3. The paper's crossover: OC3 with 12 pcores matches B2 with
/// 16 (within 1 %), freeing 4 pcores.
/// The Figure 12 operating point: load, residual P95 delta at the
/// crossover, and the model parameters the figure is built from.
struct Fig12Point {
    lambda: f64,
    delta: f64,
    service_b2: f64,
    scv: f64,
    sql_oc3: f64,
}

/// Solves the Figure 12 operating point. 4 SQL VMs × 4 vcores; the
/// aggregate load is solved so that the paper's observation holds:
/// OC3 with 12 pcores matches B2 with 16. (The paper ran one fixed
/// load and reported the crossover; we recover that load by bisection
/// on the analytic M/G/k model.)
fn fig12_crossover() -> Fig12Point {
    let service_b2 = 0.010; // 10 ms per query-core at B2
    let scv = 1.5;
    let sql_oc3 = time_ratio(
        &ic_workloads::apps::AppProfile::sql(),
        &CpuConfig::oc3(),
        &CpuConfig::b2(),
    );
    let ratio_at = |lambda: f64| {
        let b2 = MgkQueue::new(16, lambda, service_b2, scv).sojourn_quantile(0.95);
        let oc3 = MgkQueue::new(12, lambda, service_b2 * sql_oc3, scv).sojourn_quantile(0.95);
        oc3 / b2 - 1.0
    };
    let (mut lo, mut hi) = (400.0, 1440.0);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if ratio_at(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = (lo + hi) / 2.0;
    Fig12Point {
        lambda,
        delta: ratio_at(lambda),
        service_b2,
        scv,
        sql_oc3,
    }
}

pub fn fig12() -> String {
    let Fig12Point {
        lambda,
        delta,
        service_b2,
        scv,
        sql_oc3,
    } = fig12_crossover();
    let power = ic_workloads::perfmodel::ServerPowerModel::tank1();

    let mut rows = Vec::new();
    for pcores in [8u32, 10, 12, 14, 16] {
        let p95 = |service: f64| -> Option<f64> {
            if lambda * service >= pcores as f64 {
                return None; // unstable: latency unbounded
            }
            Some(MgkQueue::new(pcores, lambda, service, scv).sojourn_quantile(0.95) * 1e3)
        };
        let b2 = p95(service_b2);
        let oc3 = p95(service_b2 * sql_oc3);
        rows.push(vec![
            format!("{pcores}"),
            b2.map_or("unstable".into(), |v| format!("{v:.2} ms")),
            oc3.map_or("unstable".into(), |v| format!("{v:.2} ms")),
            format!(
                "{:.0} W",
                power.avg_power_w(&CpuConfig::b2(), pcores.min(28))
            ),
            format!(
                "{:.0} W",
                power.avg_power_w(&CpuConfig::oc3(), pcores.min(28))
            ),
        ]);
    }
    let mut out = table(
        "Figure 12: SQL P95 vs pcores (4 VMs, 16 vcores)",
        &["pcores", "B2 P95", "OC3 P95", "B2 power", "OC3 power"],
        &rows,
    );
    out.push_str(&format!(
        "At {lambda:.0} QPS: OC3@12 pcores vs B2@16 pcores: {:+.1}% (paper: within 1%) -> 4 pcores freed\n",
        delta * 100.0
    ));
    out
}

/// Structured Figure 12 metrics: the residual P95 delta at the
/// crossover (paper: within 1%, i.e. ~0) and the pcores freed.
pub fn fig12_metrics() -> Vec<crate::report::Metric> {
    use crate::report::Metric;
    let point = fig12_crossover();
    vec![
        Metric::with_paper(
            "crossover_p95_delta_pct",
            "percent",
            0.0,
            point.delta * 100.0,
        ),
        Metric::with_paper("pcores_freed", "count", 4.0, 4.0),
        Metric::new("crossover_load_qps", "qps", point.lambda),
    ]
}

/// Figure 13 (and Table X): mixed batch + latency-sensitive
/// oversubscription scenarios.
pub fn fig13() -> String {
    let rows: Vec<Vec<String>> = figure13_sweep()
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                format!("{}x {}", r.count, r.app),
                r.config.to_string(),
                format!("{:+.1}%", r.improvement_pct),
            ]
        })
        .collect();
    table(
        "Figure 13 / Table X: oversubscription (20 vcores on 16 pcores, vs 20-pcore B2)",
        &["Scenario", "Workload", "Config", "Improvement"],
        &rows,
    )
}

/// Figure 14: the auto-scaler architecture, rendered as the component
/// inventory of this implementation (paths into the workspace), plus
/// the control cadences of the running configuration.
pub fn fig14() -> String {
    use ic_autoscale::policy::AscConfig;
    let cfg = AscConfig::paper();
    let mut out = String::from(
        "== Figure 14: auto-scaling (ASC) architecture ==\n\
         clients --> load balancer --> server VMs (M/G/k, ic-workloads::mgk)\n\
         server VMs --> telemetry: Aperf/Pperf/Util (ic-telemetry::counters)\n\
         telemetry --> ASC decision loop (ic-autoscale::asc)\n\
         ASC --> scale-out/in: add/remove VM (60 s creation latency)\n\
         ASC --> scale-up/down: per-core frequency via Equation 1 (ic-telemetry::eq1)\n\n",
    );
    out.push_str(&format!(
        "Cadences: decisions every {:.0} s; scale-out/in on a {:.0}-s window \
         (thresholds {:.0}%/{:.0}%); scale-up/down on a {:.0}-s window \
         (thresholds {:.0}%/{:.0}%); {} frequency bins from {:.2}x to {:.2}x.\n",
        cfg.decision_period_s,
        cfg.out_window_s,
        cfg.scale_out_threshold * 100.0,
        cfg.scale_in_threshold * 100.0,
        cfg.up_window_s,
        cfg.scale_up_threshold * 100.0,
        cfg.scale_down_threshold * 100.0,
        cfg.freq_ratios.len(),
        cfg.base_ratio(),
        cfg.max_ratio(),
    ));
    out
}

/// Figure 15: Equation 1 validation — utilization and frequency over
/// the 1000/2000/500/3000/1000 QPS schedule with scale-up/down only.
pub fn fig15(quick: bool) -> String {
    let r = fig15_run(quick);
    let mut out = String::from("== Figure 15: model validation (3 VMs, scale-up/down only) ==\n");
    out.push_str("time_s,util_pct,freq_pct_of_range\n");
    let step = ic_sim::SimDuration::from_secs(if quick { 30 } else { 60 });
    let end = *r
        .utilization
        .points()
        .last()
        .map(|(t, _)| t)
        .expect("series non-empty");
    for (t, util) in r.utilization.resample(step, end) {
        let freq = r.frequency_pct.value_at(t).unwrap_or(0.0);
        out.push_str(&format!("{:.0},{:.1},{:.1}\n", t.as_secs_f64(), util, freq));
    }
    out
}

/// Figure 16: fleet utilization over time for baseline / OC-E / OC-A on
/// the full ramp.
pub fn fig16(quick: bool) -> String {
    let mut config = RunnerConfig::paper();
    if quick {
        config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    }
    let policies = [Policy::Baseline, Policy::OcE, Policy::OcA];
    let results = run_batch(
        policies
            .into_iter()
            .map(|policy| (config.clone(), policy, 42))
            .collect(),
    );
    let mut series = Vec::new();
    let mut summary = String::new();
    for (policy, r) in policies.into_iter().zip(results) {
        let mut s = ic_sim::series::TimeSeries::new(match policy {
            Policy::Baseline => "baseline_util",
            Policy::OcE => "oce_util",
            Policy::OcA => "oca_util",
            Policy::Predictive => "predictive_util",
        });
        let end = *r
            .utilization
            .points()
            .last()
            .map(|(t, _)| t)
            .expect("series non-empty");
        for (t, v) in r
            .utilization
            .resample(ic_sim::SimDuration::from_secs(60), end)
        {
            s.push(t, v);
        }
        summary.push_str(&format!(
            "{:9}: peak util {:>5.1}%, max VMs {}\n",
            r.policy,
            r.utilization.max().unwrap_or(0.0),
            r.max_vms
        ));
        series.push(s);
    }
    let refs: Vec<&ic_sim::series::TimeSeries> = series.iter().collect();
    format!(
        "== Figure 16: utilization under the three policies ==\n{}{}",
        summary,
        merge_csv(&refs)
    )
}

/// Runs the Figure 15 validation scenario (OC-A on the
/// 1000/2000/500/3000/1000 QPS schedule; `quick` halves the dwell).
fn fig15_run(quick: bool) -> ic_autoscale::runner::RunResult {
    fig15_run_with(quick, None)
}

fn fig15_run_with(quick: bool, flight: Option<&FlightHandle>) -> ic_autoscale::runner::RunResult {
    let mut config = RunnerConfig::validation();
    if quick {
        // Halve the dwell to 2.5 minutes.
        config.schedule = config.schedule.iter().map(|&(t, q)| (t / 2.0, q)).collect();
    }
    let mut runner = Runner::new(config, Policy::OcA, 42);
    if let Some(flight) = flight {
        runner = runner.with_flight(flight.clone());
    }
    runner.run()
}

/// The Figure 15 validation invariant, exposed for tests: at every
/// frequency *increase* inside a constant-load phase, utilization must
/// not rise afterwards.
pub fn fig15_validates(quick: bool) -> bool {
    fig15_invariant_holds(&fig15_run(quick))
}

fn fig15_invariant_holds(r: &ic_autoscale::runner::RunResult) -> bool {
    let pts = r.frequency_pct.points();
    for pair in pts.windows(2) {
        let ((t0, f0), (t1, f1)) = (pair[0], pair[1]);
        if f1 > f0 + 10.0 {
            let before = r.utilization.value_at(t0);
            let after = r
                .utilization
                .value_at(t1 + ic_sim::SimDuration::from_secs(45));
            if let (Some(b), Some(a)) = (before, after) {
                // Allow noise, but a frequency boost must not push
                // utilization up during steady load.
                if a > b + 8.0 {
                    return false;
                }
            }
        }
    }
    true
}

/// Structured Figure 15 record: Equation 1 validation outcome plus the
/// run's simulation-event count, for `run_all --json`.
pub fn fig15_record(quick: bool) -> (u64, Vec<crate::report::Metric>) {
    fig15_record_with(quick, None)
}

/// [`fig15_record`] with flight recording: the validation run records
/// its windows, engine phases, and frequency decisions into `flight`
/// directly (single run — no batch merge involved).
pub fn fig15_record_traced(
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<crate::report::Metric>) {
    fig15_record_with(quick, Some(flight))
}

fn fig15_record_with(
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<crate::report::Metric>) {
    use crate::report::Metric;
    let r = fig15_run_with(quick, flight);
    let holds = fig15_invariant_holds(&r);
    let metrics = vec![
        Metric::with_paper(
            "eq1_invariant_holds",
            "bool",
            1.0,
            f64::from(u8::from(holds)),
        ),
        Metric::new(
            "peak_util_pct",
            "percent",
            r.utilization.max().unwrap_or(0.0),
        ),
    ];
    (r.sim_events, metrics)
}

/// Structured Figure 16 record: peak utilization and VM footprint per
/// policy plus the combined simulation-event count, for
/// `run_all --json`.
pub fn fig16_record(quick: bool) -> (u64, Vec<crate::report::Metric>) {
    fig16_record_with(quick, None)
}

/// [`fig16_record`] with flight recording (see
/// [`ic_autoscale::runner::run_batch_traced`]).
pub fn fig16_record_traced(
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<crate::report::Metric>) {
    fig16_record_with(quick, Some(flight))
}

fn fig16_record_with(
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<crate::report::Metric>) {
    use crate::report::Metric;
    let mut config = RunnerConfig::paper();
    if quick {
        config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    }
    let mut sim_events = 0;
    let mut metrics = Vec::new();
    let tasks: Vec<_> = [Policy::Baseline, Policy::OcE, Policy::OcA]
        .into_iter()
        .map(|policy| (config.clone(), policy, 42))
        .collect();
    let results = match flight {
        Some(flight) => run_batch_traced(tasks, flight),
        None => run_batch(tasks),
    };
    for r in results {
        sim_events += r.sim_events;
        metrics.push(Metric::new(
            format!("peak_util_pct[{}]", r.policy),
            "percent",
            r.utilization.max().unwrap_or(0.0),
        ));
        metrics.push(Metric::new(
            format!("max_vms[{}]", r.policy),
            "count",
            r.max_vms as f64,
        ));
    }
    (sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_figures_render() {
        for f in [
            fig4(),
            fig5(),
            fig6(),
            fig7(),
            fig9(),
            fig10(),
            fig11(),
            fig12(),
            fig13(),
        ] {
            assert!(f.contains("Figure"), "{f}");
            assert!(f.lines().count() >= 4);
        }
    }

    #[test]
    fn fig12_crossover_within_tolerance() {
        let out = fig12();
        assert!(out.contains("4 pcores freed"));
        // Parse the reported delta and require the paper's ~1% band.
        let line = out.lines().find(|l| l.contains("OC3@12")).unwrap();
        let pct: f64 = line
            .split('%')
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .trim_start_matches('+')
            .parse()
            .unwrap();
        assert!(pct.abs() < 2.0, "crossover delta {pct}%");
    }

    #[test]
    fn fig12_latency_decreases_with_pcores() {
        let out = fig12();
        let mut last = f64::INFINITY;
        for line in out.lines().skip(2) {
            let mut tokens = line.split_whitespace();
            // Only data rows: first token is the pcore count.
            let Some(Ok(_pcores)) = tokens.next().map(|t| t.parse::<u32>()) else {
                continue;
            };
            if let Some(Ok(v)) = tokens.next().map(|t| t.parse::<f64>()) {
                assert!(v <= last, "{out}");
                last = v;
            }
        }
    }

    #[test]
    fn fig13_has_all_scenarios() {
        let out = fig13();
        for s in ["Scenario 1", "Scenario 2", "Scenario 3"] {
            assert!(out.contains(s));
        }
        assert!(out.contains("2x TeraSort"));
    }
}
