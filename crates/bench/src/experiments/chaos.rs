//! The chaos experiment: wear-coupled fault injection, B2 vs OC3.
//!
//! Two composed fleets run the same client demand through the same
//! control-plane stack; the only difference is the operating point the
//! governor is asked for — B2 holds the 3.4 GHz base clock at stock
//! voltage, OC3 requests the 4.1 GHz all-core turbo at +50 mV. Both
//! draw their faults from one [`ic_chaos::FaultProcess`] seed, so the
//! comparison is a common-random-numbers *monotone coupling*: the two
//! fleets share their per-server `Exp(1)` hazard thresholds, and the
//! fleet whose V/f/Tj trajectory wears faster crosses them first. OC3
//! must therefore show strictly more injected failures and strictly
//! lower availability than B2 at equal demand — the paper's Section IV
//! reliability cost, measured end to end instead of asserted.
//!
//! On top of the wear faults, both fleets absorb the same exogenous
//! control-plane faults: a frozen telemetry window (controllers act on
//! a stale snapshot; wear accrual catches up at thaw), a VM sensor
//! dropout, and a stalled-governor window. The
//! [`ic_chaos::DegradationController`] responds by de-overclocking on
//! fleet-wide error spikes and proactively draining bursting servers;
//! the failover controller re-places evicted VMs. The record carries
//! the full [`ic_chaos::SloScorecard`] for each fleet.

use super::composed::{composed_run_with, ChaosSetup, ComposedRun};
use crate::report::Metric;
use ic_autoscale::policy::Policy;
use ic_chaos::{DegradationPolicy, LatencySlo};
use ic_obs::flight::FlightHandle;
use ic_reliability::stability::StabilityModel;
use ic_scenario::{FaultConfig, FaultWindow, SensorDropout, StalledWindow};
use ic_sim::rng::StreamVersion;

/// Fault-process seed shared by both fleets (the CRN coupling).
const FAULT_SEED: u64 = 0x00C0_FFEE;

/// Accelerated-aging factor: the composite model's 5-year-scale
/// lifetimes compressed onto a sub-hour horizon so a 4-server fleet
/// sees a handful of wear failures.
const HAZARD_SCALE: f64 = 3.5e5;

/// Correctable-error acceleration, same idea: months of error budget
/// compressed onto the run.
const ERROR_SCALE: f64 = 5.0e4;

/// Raised power budget so capping does not flatten the B2/OC3
/// frequency difference — the comparison is about wear, not grants.
const CHAOS_BUDGET_W: f64 = 1500.0;

/// The paper's overclocked configs pin +50 mV on top of the V/f curve.
const OC3_OFFSET_V: f64 = 0.050;

/// Stability envelope for the chaos fleets. Ratios here are relative
/// to the 3.4 GHz *base* clock (not the all-core turbo the paper's
/// envelope is quoted against): flat background error rate at base,
/// e-folding per percent beyond it, crash ceiling far above anything
/// the governor will grant.
fn stability() -> StabilityModel {
    StabilityModel::new(1.0, 1.6, 0.05, 0.35)
}

/// The exogenous fault schedule, in units of the run's dwell so quick
/// and full runs exercise the same phases of the demand ramp.
fn fault_config(quick: bool) -> FaultConfig {
    let dwell = if quick { 150.0 } else { 300.0 };
    let mut f = FaultConfig::disabled();
    f.seed = FAULT_SEED;
    f.hazard_scale = HAZARD_SCALE;
    f.error_scale = ERROR_SCALE;
    f.repair_min_s = 0.15 * dwell;
    f.repair_max_s = 0.3 * dwell;
    f.stale_telemetry = vec![FaultWindow {
        from_s: 2.0 * dwell,
        until_s: 2.25 * dwell,
    }];
    f.sensor_dropouts = vec![SensorDropout {
        vm: 1,
        window: FaultWindow {
            from_s: 0.5 * dwell,
            until_s: 1.0 * dwell,
        },
    }];
    f.stalled_controllers = vec![StalledWindow {
        controller: "governor".to_string(),
        window: FaultWindow {
            from_s: 1.5 * dwell,
            until_s: 1.9 * dwell,
        },
    }];
    f
}

fn setup(
    requested_ghz: f64,
    target_lifetime_years: f64,
    governor_stability: StabilityModel,
    voltage_offset_v: f64,
    deoc_ratio: f64,
    asc_policy: Policy,
    quick: bool,
) -> ChaosSetup {
    ChaosSetup {
        faults: fault_config(quick),
        requested_ghz,
        target_lifetime_years,
        budget_w: CHAOS_BUDGET_W,
        domain_demand_w: 450.0,
        voltage_offset_v,
        stability: stability(),
        governor_stability,
        policy: DegradationPolicy {
            fleet_errors_per_tick: 4,
            server_burst_errors: 3,
            deoc_ratio,
            drain_cooldown_s: 60.0,
        },
        slo: LatencySlo {
            p95_s: 0.015,
            p99_s: 0.040,
        },
        asc_policy,
    }
}

/// The baseline fleet: base clock, stock voltage, 5-year target, the
/// paper's measured stability envelope.
fn b2_setup(quick: bool) -> ChaosSetup {
    setup(
        3.4,
        5.0,
        StabilityModel::paper_characterization(),
        0.0,
        1.0,
        Policy::Baseline,
        quick,
    )
}

/// The overclocked fleet: all-core turbo ask at +50 mV, buying the
/// headroom with a shortened service-life target and an
/// over-optimistic stability characterization (validated to +40 %
/// instead of the measured +23 %). The gap between the claimed and the
/// true envelope is exactly what the wear-coupled fault process makes
/// it pay for.
/// The de-overclock response steps down one 100 MHz bin, the paper's
/// "watch the correctable-error rate" mitigation — B2 already sits at
/// base so its step lands on base; OC3 steps from its ~3.78 GHz grant
/// to ~3.68 GHz (ratio 1.08), still well above its true envelope.
fn oc3_setup(quick: bool) -> ChaosSetup {
    setup(
        4.1,
        1.0,
        StabilityModel::new(1.40, 1.60, 0.05, 0.75),
        OC3_OFFSET_V,
        1.08,
        Policy::OcA,
        quick,
    )
}

struct ChaosRun {
    b2: ComposedRun,
    oc3: ComposedRun,
}

fn chaos_run(version: StreamVersion, quick: bool, flight: Option<&FlightHandle>) -> ChaosRun {
    ChaosRun {
        b2: composed_run_with(version, quick, flight, Some(&b2_setup(quick))),
        oc3: composed_run_with(version, quick, flight, Some(&oc3_setup(quick))),
    }
}

/// The chaos experiment's human-readable report.
pub fn chaos(version: StreamVersion, quick: bool) -> String {
    let r = chaos_run(version, quick, None);
    let mut out = String::from("== Chaos: wear-coupled faults, B2 vs OC3 at equal demand ==\n");
    out.push_str(&format!(
        "shared fault seed {FAULT_SEED:#x}; hazard x{HAZARD_SCALE:.0e}, errors x{ERROR_SCALE:.0e}; \
         horizon {:.0} s\n",
        r.b2.end_s
    ));
    for (label, run, ghz, mv) in [
        ("B2 ", &r.b2, 3.4, 0.0),
        ("OC3", &r.oc3, 4.1, OC3_OFFSET_V * 1e3),
    ] {
        let c = run.chaos.as_ref().expect("chaos runs carry an outcome");
        out.push_str(&format!(
            "fleet {label} ({ghz:.1} GHz ask, +{mv:.0} mV): availability {:.4}, \
             {} wear failures, {} bursts / {} errors, {} VMs recovered\n",
            c.scorecard.availability,
            c.injected_failures,
            c.injected_bursts,
            c.scorecard.errors_total,
            c.scorecard.recovered_vms,
        ));
        out.push_str(&format!(
            "          governor {:.2} GHz ({}); {} completed, P95 {:.1} ms, \
             breach P95 {:.0} min / P99 {:.0} min; {} de-OCs, {} drains, {} stalled ticks\n",
            run.governor_ghz,
            run.governor_binding,
            c.scorecard.completed,
            c.scorecard.p95_latency_s * 1e3,
            c.scorecard.p95_breach_min,
            c.scorecard.p99_breach_min,
            c.deocs,
            c.drains,
            c.stalled_ticks,
        ));
    }
    out
}

/// Structured record for `run_all --json`.
pub fn chaos_record(version: StreamVersion, quick: bool) -> (u64, Vec<Metric>) {
    chaos_record_with(version, quick, None)
}

/// [`chaos_record`] with flight recording; the record itself is
/// byte-identical to the untraced one.
pub fn chaos_record_traced(
    version: StreamVersion,
    quick: bool,
    flight: &FlightHandle,
) -> (u64, Vec<Metric>) {
    chaos_record_with(version, quick, Some(flight))
}

fn chaos_record_with(
    version: StreamVersion,
    quick: bool,
    flight: Option<&FlightHandle>,
) -> (u64, Vec<Metric>) {
    let r = chaos_run(version, quick, flight);
    let mut metrics = Vec::new();
    for (prefix, run) in [("b2", &r.b2), ("oc3", &r.oc3)] {
        let c = run.chaos.as_ref().expect("chaos runs carry an outcome");
        let s = &c.scorecard;
        metrics.push(Metric::new(
            format!("{prefix}_availability"),
            "fraction",
            s.availability,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_wear_failures"),
            "count",
            c.injected_failures as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_failures_applied"),
            "count",
            s.failures as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_error_bursts"),
            "count",
            c.injected_bursts as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_errors_total"),
            "count",
            s.errors_total as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_recovered_vms"),
            "count",
            s.recovered_vms as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_p95_breach_min"),
            "minutes",
            s.p95_breach_min,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_p99_breach_min"),
            "minutes",
            s.p99_breach_min,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_p95_latency_s"),
            "seconds",
            s.p95_latency_s,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_requests_completed"),
            "count",
            s.completed as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_governor_ghz"),
            "ghz",
            run.governor_ghz,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_deocs"),
            "count",
            c.deocs as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_drains"),
            "count",
            c.drains as f64,
        ));
        metrics.push(Metric::new(
            format!("{prefix}_stalled_ticks"),
            "count",
            c.stalled_ticks as f64,
        ));
    }
    (r.b2.sim_events + r.oc3.sim_events, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::composed::{composed_record, record_from_run};

    /// The differential satellite: the parameterized runner with the
    /// chaos setup absent must reproduce the historical `composed`
    /// record byte-for-byte — the refactor may not leak into the
    /// fault-free path.
    #[test]
    fn zero_fault_path_matches_composed_record() {
        for version in [StreamVersion::V1, StreamVersion::V2] {
            let via_chaos_path = record_from_run(&composed_run_with(version, true, None, None));
            assert_eq!(via_chaos_path, composed_record(version, true));
        }
    }

    /// The acceptance criterion: under common random numbers, the
    /// overclocked fleet fails strictly more often and is strictly
    /// less available than the base fleet at equal demand.
    #[test]
    fn oc3_wears_strictly_harder_than_b2() {
        let r = chaos_run(StreamVersion::V1, true, None);
        let b2 = r.b2.chaos.as_ref().unwrap();
        let oc3 = r.oc3.chaos.as_ref().unwrap();
        assert!(
            oc3.injected_failures > b2.injected_failures,
            "OC3 {} failures vs B2 {}",
            oc3.injected_failures,
            b2.injected_failures
        );
        assert!(
            oc3.scorecard.availability < b2.scorecard.availability,
            "OC3 {} availability vs B2 {}",
            oc3.scorecard.availability,
            b2.scorecard.availability
        );
        assert!(
            oc3.injected_bursts > b2.injected_bursts,
            "OC3 {} bursts vs B2 {}",
            oc3.injected_bursts,
            b2.injected_bursts
        );
        // Both fleets actually exercise the machinery.
        assert!(b2.injected_failures > 0, "B2 saw no wear failures");
        assert!(
            oc3.deocs + oc3.drains > 0,
            "degradation response never fired"
        );
        assert!(oc3.stalled_ticks > 0, "governor stall never landed");
    }

    #[test]
    fn chaos_record_is_deterministic() {
        let a = chaos_record(StreamVersion::V1, true);
        let b = chaos_record(StreamVersion::V1, true);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_record_matches_untraced() {
        let flight = ic_obs::flight::shared_flight(1 << 16);
        let plain = chaos_record(StreamVersion::V1, true);
        let traced = chaos_record_traced(StreamVersion::V1, true, &flight);
        assert_eq!(plain, traced, "tracing must not change the record");
    }
}
