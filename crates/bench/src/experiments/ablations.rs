//! Ablation studies on the reproduction's design choices.
//!
//! These quantify how sensitive the headline results are to the knobs
//! the paper leaves implicit (and that DESIGN.md calls out as
//! calibration targets): the scale-out interference level, the
//! auto-scaler's windows, the lifetime-model parameters, and the
//! placement policy.

use crate::{cell, table};
use ic_autoscale::policy::Policy;
use ic_autoscale::runner::{ramp_schedule, run_batch, RunnerConfig};
use ic_cluster::cluster::Cluster;
use ic_cluster::lifecycle::{run_lifecycle, LifecycleConfig};
use ic_cluster::placement::{Oversubscription, PlacementPolicy};
use ic_cluster::server::ServerSpec;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::mechanisms::{Electromigration, GateOxideBreakdown, ThermalCycling};
use ic_sim::SimTime;

fn short_ramp() -> RunnerConfig {
    let mut cfg = RunnerConfig::paper();
    cfg.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    cfg
}

/// Sweeps the scale-out interference level: how much of the Table XI
/// latency story comes from VM creation disturbing the serving VMs.
pub fn ablation_interference() -> String {
    // The full 4 × 3 grid goes through the scatter-gather pool in one
    // fixed decomposition; results come back in grid order.
    let levels = [0.0, 0.16, 0.32, 0.40];
    let tasks: Vec<_> = levels
        .iter()
        .flat_map(|&interference| {
            let mut cfg = short_ramp();
            cfg.asc.scale_out_interference = interference;
            [Policy::Baseline, Policy::OcE, Policy::OcA]
                .into_iter()
                .map(move |policy| (cfg.clone(), policy, 42))
        })
        .collect();
    let results = run_batch(tasks);
    let mut rows = Vec::new();
    for (i, &interference) in levels.iter().enumerate() {
        let (base, oce, oca) = (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
        rows.push(vec![
            format!("{:.2}", interference),
            cell(oce.p95_latency_s / base.p95_latency_s, 2),
            cell(oca.p95_latency_s / base.p95_latency_s, 2),
            format!("{}/{}/{}", base.max_vms, oce.max_vms, oca.max_vms),
        ]);
    }
    table(
        "Ablation: scale-out interference vs Table XI shape",
        &[
            "Interference",
            "OC-E norm P95",
            "OC-A norm P95",
            "Max VMs B/E/A",
        ],
        &rows,
    )
}

/// Compares all four policies, including the predictive comparator the
/// paper cites as complementary state of the art.
pub fn ablation_policies() -> String {
    let cfg = short_ramp();
    let results = run_batch(
        [
            Policy::Baseline,
            Policy::Predictive,
            Policy::OcE,
            Policy::OcA,
        ]
        .into_iter()
        .map(|policy| (cfg.clone(), policy, 42))
        .collect(),
    );
    // Baseline is task 0; it doubles as the normalization reference,
    // which the old serial version ran a fifth, redundant time.
    let base = &results[0];
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.policy.to_string(),
            cell(r.p95_latency_s / base.p95_latency_s, 2),
            cell(r.avg_latency_s / base.avg_latency_s, 2),
            format!("{}", r.max_vms),
            cell(r.vm_hours, 2),
        ]);
    }
    table(
        "Ablation: reactive vs predictive vs overclocking policies",
        &["Policy", "Norm P95", "Norm Avg", "Max VMs", "VMxHours"],
        &rows,
    )
}

/// Perturbs the lifetime-model shape parameters ±10 % and reports the
/// two Table V rows that gate the paper's conclusions.
pub fn ablation_lifetime() -> String {
    let base_tddb = GateOxideBreakdown::fitted();
    let base_em = Electromigration::fitted();
    let base_tc = ThermalCycling::fitted();
    let hfe_oc = OperatingConditions::new(0.98, 60.0, 35.0);
    let air_oc = OperatingConditions::new(0.98, 101.0, 20.0);

    let build = |gamma_scale: f64, ea_scale: f64, q_delta: f64| {
        CompositeLifetimeModel::from_mechanisms(vec![
            Box::new(GateOxideBreakdown {
                a: base_tddb.a,
                gamma: base_tddb.gamma * gamma_scale,
                ea_ev: base_tddb.ea_ev * ea_scale,
            }),
            Box::new(Electromigration {
                a: base_em.a,
                ea_ev: base_em.ea_ev * ea_scale,
            }),
            Box::new(ThermalCycling {
                b: base_tc.b,
                q: base_tc.q + q_delta,
            }),
        ])
    };
    let mut rows = Vec::new();
    for (label, g, e, q) in [
        ("fitted", 1.0, 1.0, 0.0),
        ("gamma -10%", 0.9, 1.0, 0.0),
        ("gamma +10%", 1.1, 1.0, 0.0),
        ("Ea -10%", 1.0, 0.9, 0.0),
        ("Ea +10%", 1.0, 1.1, 0.0),
        ("q -1", 1.0, 1.0, -1.0),
        ("q +1", 1.0, 1.0, 1.0),
    ] {
        let m = build(g, e, q);
        rows.push(vec![
            label.to_string(),
            format!("{:.1} y", m.lifetime_years(&hfe_oc)),
            format!("{:.2} y", m.lifetime_years(&air_oc)),
        ]);
    }
    let mut out = table(
        "Ablation: lifetime-model parameter sensitivity",
        &["Variant", "HFE-7000 OC (paper 5 y)", "Air OC (paper <1 y)"],
        &rows,
    );
    out.push_str("(the air-OC << HFE-OC ordering survives every perturbation)\n");
    out
}

/// Placement policies × oversubscription under a heavy trace: peak
/// density and rejection counts.
pub fn ablation_packing() -> String {
    let cfg = LifecycleConfig {
        mean_interarrival_s: 3.0,
        ..LifecycleConfig::cloud_default()
    };
    let horizon = SimTime::from_secs(6 * 3600);
    let mut rows = Vec::new();
    for (policy, name) in [
        (PlacementPolicy::FirstFit, "first-fit"),
        (PlacementPolicy::BestFit, "best-fit"),
        (PlacementPolicy::WorstFit, "worst-fit"),
    ] {
        for ratio in [1.0, 1.1, 1.2] {
            let cluster = Cluster::new(
                vec![ServerSpec::open_compute(); 8],
                policy,
                if ratio > 1.0 {
                    Oversubscription::ratio(ratio)
                } else {
                    Oversubscription::none()
                },
            );
            let r = run_lifecycle(cluster, &cfg, horizon, 42);
            rows.push(vec![
                name.to_string(),
                format!("{ratio:.1}"),
                cell(r.peak_density, 3),
                format!("{}", r.accepted),
                format!("{}", r.rejected),
            ]);
        }
    }
    table(
        "Ablation: placement policy x oversubscription (6 h heavy trace)",
        &["Policy", "Ratio", "Peak density", "Accepted", "Rejected"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_ablation_preserves_ordering() {
        let out = ablation_lifetime();
        assert!(out.contains("fitted"));
        assert!(out.lines().count() >= 10);
    }

    #[test]
    fn packing_ablation_runs() {
        let out = ablation_packing();
        assert!(out.contains("best-fit"));
        // 3 policies × 3 ratios = 9 data rows.
        assert_eq!(out.lines().filter(|l| l.contains("fit")).count(), 9);
    }
}
