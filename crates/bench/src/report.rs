//! Machine-readable experiment records for `run_all --json`.
//!
//! Each experiment emits one [`ExperimentRecord`] as a single JSONL
//! line: the experiment id, wall-clock time, the number of simulation
//! events it processed (zero for analytic experiments), and a list of
//! [`Metric`]s pairing the paper's reported value with the value this
//! implementation measures. Encoding goes through `ic_obs::json`, so
//! the numeric formatting is byte-stable across runs and platforms.

use ic_obs::json::{write_escaped, write_f64};

/// One paper-vs-measured data point inside an experiment record.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name; bracketed suffixes scope it to a row or config,
    /// e.g. `tj_c[Skylake 8168 / Air]`.
    pub name: String,
    /// Unit label (`"ratio"`, `"years"`, `"celsius"`, ...).
    pub unit: &'static str,
    /// The value the paper reports, when it reports one.
    pub paper: Option<f64>,
    /// The value this implementation produces.
    pub measured: f64,
}

impl Metric {
    /// A metric with no paper-reported counterpart.
    pub fn new(name: impl Into<String>, unit: &'static str, measured: f64) -> Metric {
        Metric {
            name: name.into(),
            unit,
            paper: None,
            measured,
        }
    }

    /// A metric the paper reports a value for.
    pub fn with_paper(
        name: impl Into<String>,
        unit: &'static str,
        paper: f64,
        measured: f64,
    ) -> Metric {
        Metric {
            name: name.into(),
            unit,
            paper: Some(paper),
            measured,
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_escaped(&self.name, out);
        out.push_str(",\"unit\":");
        write_escaped(self.unit, out);
        out.push_str(",\"paper\":");
        match self.paper {
            Some(v) => write_f64(v, out),
            None => out.push_str("null"),
        }
        out.push_str(",\"measured\":");
        write_f64(self.measured, out);
        out.push('}');
    }
}

/// One experiment's machine-readable result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Stable identifier in paper order (`"table1"` ... `"fig16"`).
    pub id: &'static str,
    /// Human-readable experiment title.
    pub title: String,
    /// Wall-clock time spent producing the record, milliseconds. This
    /// is the only non-deterministic field; traces never contain it.
    pub wall_ms: f64,
    /// Discrete-event count for simulation-backed experiments; zero for
    /// analytic ones.
    pub sim_events: u64,
    /// Paper-vs-measured data points.
    pub metrics: Vec<Metric>,
}

impl ExperimentRecord {
    /// Encodes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        write_escaped(self.id, &mut out);
        out.push_str(",\"title\":");
        write_escaped(&self.title, &mut out);
        out.push_str(",\"wall_ms\":");
        write_f64(self.wall_ms, &mut out);
        out.push_str(",\"sim_events\":");
        out.push_str(&self.sim_events.to_string());
        out.push_str(",\"metrics\":[");
        for (i, metric) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            metric.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_encodes_exactly() {
        let rec = ExperimentRecord {
            id: "table11",
            title: "Table XI: auto-scaler".to_string(),
            wall_ms: 12.5,
            sim_events: 1234,
            metrics: vec![
                Metric::with_paper("p95_norm[oce]", "ratio", 0.58, 0.6125),
                Metric::new("extra", "count", 3.0),
            ],
        };
        assert_eq!(
            rec.to_json(),
            "{\"id\":\"table11\",\"title\":\"Table XI: auto-scaler\",\"wall_ms\":12.5,\
             \"sim_events\":1234,\"metrics\":[\
             {\"name\":\"p95_norm[oce]\",\"unit\":\"ratio\",\"paper\":0.58,\"measured\":0.6125},\
             {\"name\":\"extra\",\"unit\":\"count\",\"paper\":null,\"measured\":3}]}"
        );
    }

    #[test]
    fn titles_escape() {
        let rec = ExperimentRecord {
            id: "x",
            title: "quote \" and \\ back".to_string(),
            wall_ms: 0.0,
            sim_events: 0,
            metrics: vec![],
        };
        assert!(rec.to_json().contains("\"quote \\\" and \\\\ back\""));
    }

    #[test]
    fn non_finite_measurements_become_null() {
        let rec = ExperimentRecord {
            id: "x",
            title: "t".to_string(),
            wall_ms: 1.0,
            sim_events: 0,
            metrics: vec![Metric::new("m", "ratio", f64::NAN)],
        };
        assert!(rec.to_json().contains("\"measured\":null"));
    }
}
