//! Regenerates Table V (lifetime projections).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table5(&scenario));
}
