//! Regenerates Table V (lifetime projections).
fn main() {
    print!("{}", ic_bench::experiments::tables::table5());
}
