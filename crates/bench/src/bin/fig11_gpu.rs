//! Regenerates Figure 11 (GPU VGG).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig11());
}
