//! Regenerates Table I (cooling technologies).
fn main() {
    print!("{}", ic_bench::experiments::tables::table1());
}
