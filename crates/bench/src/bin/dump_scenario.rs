//! Writes the paper's calibration scenario to stdout as JSON.
//!
//! The output is a valid `--scenario` file for `run_all`: feed it back
//! unmodified and every experiment reproduces the default report; edit
//! any constant to run the whole suite against your own calibration.

fn main() {
    print!("{}", ic_scenario::Scenario::paper().to_json());
}
