//! Regenerates Figure 6 (buffers).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig6());
}
