//! `check`: the CI perf-regression gate.
//!
//! Compares a kernel-benchmark snapshot against the checked-in
//! baseline (`BENCH_sim.json`) using the per-key tolerance rules in
//! [`ic_bench::check`].
//!
//! Flags:
//!   --baseline <file>  baseline snapshot (default: BENCH_sim.json)
//!   --current <file>   snapshot to judge; `-` or omitted reads stdin
//!
//! Exit status: 0 when every key is within tolerance, 1 on a
//! regression, 2 on usage or I/O errors.

use ic_bench::check::check;
use std::io::Read as _;
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "BENCH_sim.json".to_string(),
        current: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                args.baseline = iter.next().ok_or("--baseline needs a file path")?;
            }
            "--current" => {
                args.current = Some(iter.next().ok_or("--current needs a file path (or `-`)")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read baseline {:?}: {e}", args.baseline))?;
    let current = match args.current.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read current snapshot from stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read current snapshot {path:?}: {e}"))?,
    };
    let report = check(&baseline, &current)?;
    print!("{}", report.render());
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("check: {message}");
            ExitCode::from(2)
        }
    }
}
