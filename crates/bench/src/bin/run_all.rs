//! Runs every table and figure experiment in paper order.
//!
//! Flags:
//!   --quick            shorten the simulation-backed experiments
//!   --json             emit one JSONL record per experiment
//!   --list             print `id  title` for every registered experiment
//!   --only <ids>       run only the comma-separated experiment ids
//!   --scenario <file>  load the calibration scenario from a JSON file
//!                      instead of the built-in paper scenario
//!   --jobs <N>         fan experiments out across N worker threads
//!                      (output order stays deterministic)
//!   --trace-out <file>    record a flight-recorder trace of the run;
//!                         stdout is byte-identical to an untraced run
//!                         and the self-time summary goes to stderr
//!   --trace-format <fmt>  trace file format: `chrome` (default; load
//!                         in Perfetto / chrome://tracing) or `jsonl`

use ic_bench::registry::{self, Mode};
use ic_obs::flight::shared_flight_from_env;
use ic_scenario::Scenario;
use std::process::ExitCode;

/// Ring capacity of the merged top-level recorder: every experiment's
/// absorbed spans land here, so it is sized above the sum of the
/// per-experiment rings seen in a full sweep.
const TRACE_CAPACITY: usize = 1 << 20;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Jsonl,
}

struct Args {
    quick: bool,
    json: bool,
    list: bool,
    only: Option<Vec<String>>,
    scenario: Option<String>,
    jobs: usize,
    trace_out: Option<String>,
    trace_format: Option<TraceFormat>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        json: false,
        list: false,
        only: None,
        scenario: None,
        jobs: 1,
        trace_out: None,
        trace_format: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--only" => {
                let ids = iter
                    .next()
                    .ok_or("--only needs a comma-separated id list")?;
                args.only = Some(
                    ids.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect(),
                );
            }
            "--scenario" => {
                args.scenario = Some(iter.next().ok_or("--scenario needs a file path")?);
            }
            "--jobs" => {
                let n = iter.next().ok_or("--jobs needs a thread count")?;
                args.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid --jobs value {n:?}"))?;
            }
            "--trace-out" => {
                args.trace_out = Some(iter.next().ok_or("--trace-out needs a file path")?);
            }
            "--trace-format" => {
                let fmt = iter
                    .next()
                    .ok_or("--trace-format needs `chrome` or `jsonl`")?;
                args.trace_format = Some(match fmt.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "jsonl" => TraceFormat::Jsonl,
                    other => return Err(format!("invalid --trace-format {other:?}")),
                });
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.trace_format.is_some() && args.trace_out.is_none() {
        return Err("--trace-format requires --trace-out".to_string());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.list {
        for exp in registry::registry() {
            use ic_bench::registry::Experiment;
            println!("{:<8} {}", exp.id(), exp.title());
        }
        return Ok(());
    }
    let scenario = match &args.scenario {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
            Scenario::from_json(&text).map_err(|e| format!("invalid scenario {path:?}: {e}"))?
        }
        None => Scenario::paper(),
    };
    let mode = if args.quick { Mode::Quick } else { Mode::Full };
    let only = args.only.as_deref();
    let flight = args
        .trace_out
        .as_ref()
        .map(|_| shared_flight_from_env(TRACE_CAPACITY));
    if args.json {
        let records = match &flight {
            Some(flight) => registry::run_selected_traced(&scenario, mode, args.jobs, only, flight),
            None => registry::run_selected(&scenario, mode, args.jobs, only),
        }
        .map_err(|e| e.to_string())?;
        let mut out = String::new();
        for record in records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        print!("{out}");
    } else {
        let out = registry::render_selected(&scenario, mode, args.jobs, only)
            .map_err(|e| e.to_string())?;
        print!("{out}");
        // The text report comes from `render`; the trace needs the
        // instrumented measurement pass, so run it separately. stdout
        // stays byte-identical to an untraced run either way.
        if let Some(flight) = &flight {
            registry::run_selected_traced(&scenario, mode, args.jobs, only, flight)
                .map_err(|e| e.to_string())?;
        }
    }
    if let (Some(path), Some(flight)) = (&args.trace_out, &flight) {
        let chrome = args.trace_format.unwrap_or(TraceFormat::Chrome) == TraceFormat::Chrome;
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        let recorder = flight.borrow();
        recorder
            .write_trace(&mut writer, chrome)
            .map_err(|e| format!("cannot write trace file {path:?}: {e}"))?;
        eprint!("{}", recorder.summary());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("run_all: {message}");
            ExitCode::from(2)
        }
    }
}
