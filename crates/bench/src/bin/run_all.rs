//! Runs every table and figure experiment in paper order.
//!
//! Flags:
//!   --quick            shorten the simulation-backed experiments
//!   --json             emit one JSONL record per experiment
//!   --list             print `id  title` for every registered experiment
//!   --only <ids>       run only the comma-separated experiment ids
//!   --scenario <file>  load the calibration scenario from a JSON file
//!                      instead of the built-in paper scenario
//!   --jobs <N>         fan experiments out across N worker threads
//!                      (output order stays deterministic)

use ic_bench::registry::{self, Mode};
use ic_scenario::Scenario;
use std::process::ExitCode;

struct Args {
    quick: bool,
    json: bool,
    list: bool,
    only: Option<Vec<String>>,
    scenario: Option<String>,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        json: false,
        list: false,
        only: None,
        scenario: None,
        jobs: 1,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--only" => {
                let ids = iter
                    .next()
                    .ok_or("--only needs a comma-separated id list")?;
                args.only = Some(
                    ids.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect(),
                );
            }
            "--scenario" => {
                args.scenario = Some(iter.next().ok_or("--scenario needs a file path")?);
            }
            "--jobs" => {
                let n = iter.next().ok_or("--jobs needs a thread count")?;
                args.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid --jobs value {n:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.list {
        for exp in registry::registry() {
            use ic_bench::registry::Experiment;
            println!("{:<8} {}", exp.id(), exp.title());
        }
        return Ok(());
    }
    let scenario = match &args.scenario {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
            Scenario::from_json(&text).map_err(|e| format!("invalid scenario {path:?}: {e}"))?
        }
        None => Scenario::paper(),
    };
    let mode = if args.quick { Mode::Quick } else { Mode::Full };
    let only = args.only.as_deref();
    if args.json {
        let records =
            registry::run_selected(&scenario, mode, args.jobs, only).map_err(|e| e.to_string())?;
        let mut out = String::new();
        for record in records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        print!("{out}");
    } else {
        let out = registry::render_selected(&scenario, mode, args.jobs, only)
            .map_err(|e| e.to_string())?;
        print!("{out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("run_all: {message}");
            ExitCode::from(2)
        }
    }
}
