//! Runs every table and figure experiment in paper order. Pass --quick
//! to shorten the simulation-backed ones, and --json to emit one
//! machine-readable JSONL record per experiment instead of the rendered
//! report.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    if json {
        print!("{}", ic_bench::experiments::run_all_json(quick));
    } else {
        print!("{}", ic_bench::experiments::run_all(quick));
    }
}
