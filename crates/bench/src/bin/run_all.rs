//! Runs every table and figure experiment in paper order; pass --quick
//! to shorten the simulation-backed ones.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ic_bench::experiments::run_all(quick));
}
