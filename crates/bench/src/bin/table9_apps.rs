//! Regenerates Table IX (applications).
fn main() {
    print!("{}", ic_bench::experiments::tables::table9());
}
