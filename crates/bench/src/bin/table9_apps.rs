//! Regenerates Table IX (applications).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table9(&scenario));
}
