//! Regenerates Figure 4 (operating domains).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig4());
}
