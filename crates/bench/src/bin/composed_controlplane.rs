//! Runs the composed control-plane experiment (ASC + capping +
//! governor + failover); pass --quick for a shortened schedule.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ic_bench::experiments::composed::composed(quick));
}
