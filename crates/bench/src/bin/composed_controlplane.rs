//! Runs the composed control-plane experiment (ASC + capping +
//! governor + failover); pass --quick for a shortened schedule and
//! --v2 for the v2 sampler stream.
use ic_sim::rng::StreamVersion;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let version = if std::env::args().any(|a| a == "--v2") {
        StreamVersion::V2
    } else {
        StreamVersion::V1
    };
    print!(
        "{}",
        ic_bench::experiments::composed::composed(version, quick)
    );
}
