//! Regenerates Table VI (TCO).
fn main() {
    print!("{}", ic_bench::experiments::tables::table6());
}
