//! Renders the Figure 14 ASC architecture and control cadences.
fn main() {
    print!("{}", ic_bench::experiments::figures::fig14());
}
