//! Regenerates Table III (max turbo air vs 2PIC).
fn main() {
    print!("{}", ic_bench::experiments::tables::table3());
}
