//! Regenerates Table III (max turbo air vs 2PIC).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table3(&scenario));
}
