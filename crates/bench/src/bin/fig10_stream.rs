//! Regenerates Figure 10 (STREAM).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig10());
}
