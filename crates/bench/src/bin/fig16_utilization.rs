//! Regenerates the paper figure; pass --quick for a shortened run.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ic_bench::experiments::figures::fig16(quick));
}
