//! Regenerates Table IV (failure modes).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table4(&scenario));
}
