//! Regenerates Table IV (failure modes).
fn main() {
    print!("{}", ic_bench::experiments::tables::table4());
}
