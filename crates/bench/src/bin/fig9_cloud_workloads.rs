//! Regenerates Figure 9 (cloud workloads).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig9());
}
