//! Regenerates Figure 12 (SQL oversubscription).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig12());
}
