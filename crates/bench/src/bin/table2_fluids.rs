//! Regenerates Table II (dielectric fluids).
fn main() {
    print!("{}", ic_bench::experiments::tables::table2());
}
