//! Regenerates Table II (dielectric fluids).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table2(&scenario));
}
