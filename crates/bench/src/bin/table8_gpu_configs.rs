//! Regenerates Table VIII (GPU configs).
fn main() {
    print!("{}", ic_bench::experiments::tables::table8());
}
