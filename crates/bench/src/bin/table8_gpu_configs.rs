//! Regenerates Table VIII (GPU configs).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table8(&scenario));
}
