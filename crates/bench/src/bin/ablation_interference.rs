//! Ablation study; see the function docs in ic_bench::experiments::ablations.
fn main() {
    print!(
        "{}",
        ic_bench::experiments::ablations::ablation_interference()
    );
}
