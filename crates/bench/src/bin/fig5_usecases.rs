//! Regenerates Figure 5 (use-case bands).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig5());
}
