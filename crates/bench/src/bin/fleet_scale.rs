//! Standalone runner for the fleet-scale control-plane experiment.
//!
//! ```sh
//! cargo run --release -p ic-bench --bin fleet_scale [-- --quick]
//! ```

use ic_bench::experiments::fleet_scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", fleet_scale::fleet_scale(quick));
}
