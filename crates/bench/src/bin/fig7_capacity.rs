//! Regenerates Figure 7 (capacity crisis).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig7());
}
