//! Regenerates Figure 13 / Table X (mixed oversubscription).
fn main() {
    print!("{}", ic_bench::experiments::figures::fig13());
}
