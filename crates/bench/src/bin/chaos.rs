//! Standalone runner for the chaos experiment: wear-coupled fault
//! injection and graceful degradation, B2 vs OC3 at equal demand.
//!
//! ```sh
//! cargo run --release -p ic-bench --bin chaos [-- --quick]
//! ```

use ic_bench::experiments::chaos;
use ic_sim::rng::StreamVersion;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", chaos::chaos(StreamVersion::V1, quick));
}
