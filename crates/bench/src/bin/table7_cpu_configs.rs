//! Regenerates Table VII (CPU configs).
fn main() {
    print!("{}", ic_bench::experiments::tables::table7());
}
