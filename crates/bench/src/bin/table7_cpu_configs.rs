//! Regenerates Table VII (CPU configs).
fn main() {
    let scenario = ic_scenario::Scenario::paper();
    print!("{}", ic_bench::experiments::tables::table7(&scenario));
}
