//! Regenerates Table XI; pass --quick for a shortened ramp.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ic_bench::experiments::tables::table11(quick));
}
