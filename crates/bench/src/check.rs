//! The perf-regression gate behind `ic-bench check`.
//!
//! Compares a kernel-benchmark snapshot (the JSON emitted by
//! `cargo bench --bench kernels -- --json`, checked in as
//! `BENCH_sim.json`) against a freshly measured one, key by key, with
//! per-key tolerance rules:
//!
//! - invariants (`engine_steady_allocs_per_event`, `mgk_boxed_events`)
//!   must stay exactly zero — these guard the allocation-free hot path;
//! - throughput keys may not drop below `1/TOLERANCE` of the baseline;
//! - latency keys may not exceed `TOLERANCE` times the baseline;
//! - `steady_cache_hit_rate` has an absolute floor (the cache is
//!   worthless below it regardless of what the baseline said);
//! - `normal_ns_per_sample_v2` has an absolute ceiling: the ziggurat
//!   draw must stay under [`MAX_NORMAL_V2_NS`] regardless of baseline;
//! - `mgk_events_per_sec_v2` must hold [`MIN_V2_SPEEDUP`]× over the v1
//!   value *in the same snapshot* — a same-host ratio, so runner speed
//!   cancels out and the gate is immune to machine-to-machine drift;
//! - `schema` must match exactly, so stale baselines fail loudly;
//! - context keys (`mode`, `par_workers`) are reported but never gate.
//!
//! The wide `TOLERANCE` absorbs machine-to-machine and CI-runner noise;
//! the gate exists to catch order-of-magnitude regressions (a lost
//! fast path, an accidental allocation per event), not 5% drift.

use ic_scenario::json::{self, Json};
use std::fmt::Write as _;

/// Multiplicative slack for throughput/latency keys: a run fails only
/// when it is more than `TOLERANCE`× worse than the baseline.
pub const TOLERANCE: f64 = 3.0;

/// Absolute floor for `steady_cache_hit_rate`.
pub const MIN_CACHE_HIT_RATE: f64 = 0.5;

/// Absolute ceiling (nanoseconds) for `normal_ns_per_sample_v2`: the
/// issue target for the ziggurat draw. Unlike the relative rules this
/// is a hard number — a v2 normal draw slower than this means the fast
/// path is gone, whatever the baseline recorded.
pub const MAX_NORMAL_V2_NS: f64 = 8.0;

/// Minimum same-snapshot speedup the v2 sampler stream must hold over
/// v1 (`mgk_events_per_sec_v2 / mgk_events_per_sec`).
pub const MIN_V2_SPEEDUP: f64 = 1.5;

/// How a key is judged against the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// String values must match exactly.
    ExactStr,
    /// Numeric value must be exactly zero in the current snapshot.
    Zero,
    /// Higher is better: `current * TOLERANCE >= baseline`.
    RateFloor,
    /// Lower is better: `current <= baseline * TOLERANCE`.
    TimeCeiling,
    /// Absolute floor: `current >= MIN_CACHE_HIT_RATE`.
    HitRateFloor,
    /// Absolute ceiling on the current value, baseline ignored.
    AbsCeiling(f64),
    /// Intra-snapshot ratio floor: the current value must be at least
    /// `min` times the named key *of the same (current) snapshot*.
    /// Both sides move with runner speed, so the ratio is host-invariant
    /// in a way baseline-relative rules cannot be.
    RatioFloor(&'static str, f64),
    /// Reported for context, never fails.
    Info,
}

/// Every key of the `ic-bench/kernels/v6` snapshot with its rule.
const RULES: &[(&str, Rule)] = &[
    ("schema", Rule::ExactStr),
    ("mode", Rule::Info),
    ("engine_events_per_sec", Rule::RateFloor),
    ("engine_ms_per_100k_events", Rule::TimeCeiling),
    ("engine_steady_events_per_sec", Rule::RateFloor),
    ("engine_steady_allocs_per_event", Rule::Zero),
    ("normal_ns_per_sample_v1", Rule::TimeCeiling),
    (
        "normal_ns_per_sample_v2",
        Rule::AbsCeiling(MAX_NORMAL_V2_NS),
    ),
    ("mgk_events_per_sec", Rule::RateFloor),
    (
        "mgk_events_per_sec_v2",
        Rule::RatioFloor("mgk_events_per_sec", MIN_V2_SPEEDUP),
    ),
    ("mgk_boxed_events", Rule::Zero),
    ("table11_wall_ms", Rule::TimeCeiling),
    ("sweep_runs_per_sec", Rule::RateFloor),
    ("composed_ctrl_ticks_per_sec", Rule::RateFloor),
    ("composed_ctrl_ticks_per_sec_v2", Rule::RateFloor),
    ("fleet_snapshot_ns_per_vm", Rule::TimeCeiling),
    ("fleet10k_ctrl_ticks_per_sec", Rule::RateFloor),
    ("chaos_events_per_sec", Rule::RateFloor),
    ("steady_cache_hit_rate", Rule::HitRateFloor),
    ("par_workers", Rule::Info),
];

/// The verdict for one snapshot key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyResult {
    /// Snapshot key.
    pub key: &'static str,
    /// `false` when this key gates the run and failed.
    pub passed: bool,
    /// Human-readable `current` / `baseline` comparison.
    pub detail: String,
}

/// The full comparison: one [`KeyResult`] per snapshot key, in schema
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Per-key verdicts.
    pub results: Vec<KeyResult>,
}

impl CheckReport {
    /// `true` when every gating key passed.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// Renders the PASS/FAIL table.
    pub fn render(&self) -> String {
        let mut out = String::from("== ic-bench check: current vs baseline ==\n");
        for r in &self.results {
            let verdict = if r.passed { "PASS" } else { "FAIL" };
            let _ = writeln!(out, "{verdict}  {:<32} {}", r.key, r.detail);
        }
        let failed = self.results.iter().filter(|r| !r.passed).count();
        if failed == 0 {
            out.push_str("all keys within tolerance\n");
        } else {
            let _ = writeln!(out, "{failed} key(s) out of tolerance");
        }
        out
    }
}

fn num(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(other) => Err(format!("key {key:?} is not a number: {other:?}")),
        None => Err(format!("key {key:?} missing from snapshot")),
    }
}

fn string(doc: &Json, key: &str) -> Result<String, String> {
    match doc.get(key) {
        Some(Json::Str(v)) => Ok(v.clone()),
        Some(other) => Err(format!("key {key:?} is not a string: {other:?}")),
        None => Err(format!("key {key:?} missing from snapshot")),
    }
}

fn judge(rule: Rule, key: &'static str, baseline: &Json, current: &Json) -> KeyResult {
    let judged: Result<(bool, String), String> = (|| match rule {
        Rule::ExactStr => {
            let b = string(baseline, key)?;
            let c = string(current, key)?;
            Ok((
                b == c,
                format!("current={c:?} baseline={b:?} (exact match)"),
            ))
        }
        Rule::Info => {
            let b = doc_value(baseline, key);
            let c = doc_value(current, key);
            Ok((true, format!("current={c} baseline={b} (informational)")))
        }
        Rule::Zero => {
            let c = num(current, key)?;
            Ok((c == 0.0, format!("current={c} (must be exactly 0)")))
        }
        Rule::RateFloor => {
            let b = num(baseline, key)?;
            let c = num(current, key)?;
            Ok((
                c * TOLERANCE >= b,
                format!("current={c:.3} baseline={b:.3} (floor: baseline/{TOLERANCE})"),
            ))
        }
        Rule::TimeCeiling => {
            let b = num(baseline, key)?;
            let c = num(current, key)?;
            Ok((
                c <= b * TOLERANCE,
                format!("current={c:.3} baseline={b:.3} (ceiling: baseline*{TOLERANCE})"),
            ))
        }
        Rule::HitRateFloor => {
            let c = num(current, key)?;
            Ok((
                c >= MIN_CACHE_HIT_RATE,
                format!("current={c:.4} (floor: {MIN_CACHE_HIT_RATE})"),
            ))
        }
        Rule::AbsCeiling(limit) => {
            let c = num(current, key)?;
            Ok((
                c <= limit,
                format!("current={c:.3} (absolute ceiling: {limit})"),
            ))
        }
        Rule::RatioFloor(over, min) => {
            let c = num(current, key)?;
            let denom = num(current, over)?;
            Ok((
                c >= min * denom,
                format!("current={c:.3} vs {min}x current {over}={denom:.3} (same-snapshot floor)"),
            ))
        }
    })();
    match judged {
        Ok((passed, detail)) => KeyResult {
            key,
            passed,
            detail,
        },
        Err(detail) => KeyResult {
            key,
            passed: false,
            detail,
        },
    }
}

fn doc_value(doc: &Json, key: &str) -> String {
    match doc.get(key) {
        Some(Json::Num(v)) => format!("{v}"),
        Some(Json::Str(v)) => format!("{v:?}"),
        Some(other) => format!("{other:?}"),
        None => "<missing>".to_string(),
    }
}

/// Parses both snapshots and judges every key. `Err` means a snapshot
/// was not valid JSON; out-of-tolerance values come back as failed
/// [`KeyResult`]s inside an `Ok` report.
pub fn check(baseline: &str, current: &str) -> Result<CheckReport, String> {
    let baseline = json::parse(baseline)
        .map_err(|e| format!("baseline snapshot: {} at byte {}", e.message, e.offset))?;
    let current = json::parse(current)
        .map_err(|e| format!("current snapshot: {} at byte {}", e.message, e.offset))?;
    Ok(CheckReport {
        results: RULES
            .iter()
            .map(|&(key, rule)| judge(rule, key, &baseline, &current))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{"schema":"ic-bench/kernels/v6","mode":"quick","engine_events_per_sec":22918209.2,"engine_ms_per_100k_events":4.363,"engine_steady_events_per_sec":26229326.6,"engine_steady_allocs_per_event":0,"normal_ns_per_sample_v1":30.5,"normal_ns_per_sample_v2":5.6,"mgk_events_per_sec":8930852.6,"mgk_events_per_sec_v2":14500000.0,"mgk_boxed_events":0,"table11_wall_ms":1617.3,"sweep_runs_per_sec":6.6,"composed_ctrl_ticks_per_sec":120.0,"composed_ctrl_ticks_per_sec_v2":240.0,"fleet_snapshot_ns_per_vm":45.0,"fleet10k_ctrl_ticks_per_sec":300.0,"chaos_events_per_sec":1200000.0,"steady_cache_hit_rate":0.996,"par_workers":1}"#;

    #[test]
    fn identical_snapshot_passes_every_key() {
        let report = check(BASELINE, BASELINE).unwrap();
        assert_eq!(report.results.len(), RULES.len());
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("all keys within tolerance"));
    }

    #[test]
    fn moderate_drift_within_tolerance_passes() {
        // Half the throughput and double the latency: ugly, but inside
        // the 3x gate (which only catches order-of-magnitude breakage).
        let current = BASELINE
            .replace("22918209.2", "11459104.6")
            .replace("1617.3", "3234.6");
        let report = check(BASELINE, &current).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn injected_3x_regression_fails_the_gate() {
        let current = BASELINE.replace("\"table11_wall_ms\":1617.3", "\"table11_wall_ms\":5200.0");
        let report = check(BASELINE, &current).unwrap();
        assert!(!report.passed());
        let failed: Vec<&str> = report
            .results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| r.key)
            .collect();
        assert_eq!(failed, ["table11_wall_ms"], "{}", report.render());
        assert!(report.render().contains("FAIL  table11_wall_ms"));
    }

    #[test]
    fn throughput_collapse_fails_the_gate() {
        let current = BASELINE.replace("\"sweep_runs_per_sec\":6.6", "\"sweep_runs_per_sec\":1.0");
        let report = check(BASELINE, &current).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("FAIL  sweep_runs_per_sec"));
    }

    #[test]
    fn hot_path_allocation_fails_regardless_of_tolerance() {
        let current = BASELINE.replace(
            "\"engine_steady_allocs_per_event\":0",
            "\"engine_steady_allocs_per_event\":1",
        );
        let report = check(BASELINE, &current).unwrap();
        assert!(!report.passed());
        assert!(report
            .render()
            .contains("FAIL  engine_steady_allocs_per_event"));
    }

    #[test]
    fn schema_mismatch_and_missing_key_fail() {
        let wrong_schema = BASELINE.replace("kernels/v6", "kernels/v5");
        assert!(!check(BASELINE, &wrong_schema).unwrap().passed());
        let missing = BASELINE.replace("\"table11_wall_ms\":1617.3,", "");
        let report = check(BASELINE, &missing).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("missing from snapshot"));
    }

    #[test]
    fn hit_rate_floor_is_absolute_not_relative() {
        // Even a baseline-matching value fails if it is below the floor.
        let low = BASELINE.replace(
            "\"steady_cache_hit_rate\":0.996",
            "\"steady_cache_hit_rate\":0.4",
        );
        assert!(!check(&low, &low).unwrap().passed());
        let ok = BASELINE.replace(
            "\"steady_cache_hit_rate\":0.996",
            "\"steady_cache_hit_rate\":0.6",
        );
        assert!(check(BASELINE, &ok).unwrap().passed());
    }

    #[test]
    fn fleet_keys_gate_in_both_directions() {
        // Snapshot refill going O(fleet) shows up as a per-VM time blowup.
        let slow_snap = BASELINE.replace(
            "\"fleet_snapshot_ns_per_vm\":45.0",
            "\"fleet_snapshot_ns_per_vm\":500.0",
        );
        let report = check(BASELINE, &slow_snap).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("FAIL  fleet_snapshot_ns_per_vm"));
        // A 10k-domain tick rate collapse means per-tick cost went O(fleet).
        let slow_ticks = BASELINE.replace(
            "\"fleet10k_ctrl_ticks_per_sec\":300.0",
            "\"fleet10k_ctrl_ticks_per_sec\":50.0",
        );
        let report = check(BASELINE, &slow_ticks).unwrap();
        assert!(!report.passed());
        assert!(report
            .render()
            .contains("FAIL  fleet10k_ctrl_ticks_per_sec"));
    }

    #[test]
    fn v2_normal_ceiling_is_absolute_not_relative() {
        // Even when baseline and current agree, a v2 normal draw above
        // the 8 ns ceiling fails: the target is the issue's, not the
        // baseline's.
        let slow = BASELINE.replace(
            "\"normal_ns_per_sample_v2\":5.6",
            "\"normal_ns_per_sample_v2\":9.1",
        );
        let report = check(&slow, &slow).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("FAIL  normal_ns_per_sample_v2"));
        assert!(report.render().contains("absolute ceiling"));
    }

    #[test]
    fn v2_speedup_is_judged_within_one_snapshot() {
        // mgk v2 dropping under 1.5x the *current* v1 value fails even
        // though both keys individually clear the 3x baseline slack.
        let current = BASELINE.replace(
            "\"mgk_events_per_sec_v2\":14500000.0",
            "\"mgk_events_per_sec_v2\":9000000.0",
        );
        let report = check(BASELINE, &current).unwrap();
        assert!(!report.passed());
        let failed: Vec<&str> = report
            .results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| r.key)
            .collect();
        assert_eq!(failed, ["mgk_events_per_sec_v2"], "{}", report.render());
        // And the ratio tracks the snapshot's own v1 value: a slower
        // runner where both streams scale down together still passes.
        let slow_host = BASELINE
            .replace(
                "\"mgk_events_per_sec\":8930852.6",
                "\"mgk_events_per_sec\":4465426.3",
            )
            .replace(
                "\"mgk_events_per_sec_v2\":14500000.0",
                "\"mgk_events_per_sec_v2\":7250000.0",
            );
        assert!(
            check(BASELINE, &slow_host).unwrap().passed(),
            "{}",
            check(BASELINE, &slow_host).unwrap().render()
        );
    }

    #[test]
    fn malformed_json_is_a_hard_error() {
        assert!(check(BASELINE, "{not json").is_err());
        assert!(check("[1,", BASELINE).is_err());
    }

    #[test]
    fn par_workers_is_informational() {
        let current = BASELINE.replace("\"par_workers\":1", "\"par_workers\":8");
        let report = check(BASELINE, &current).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("informational"));
    }
}
