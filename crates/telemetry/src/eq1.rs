//! The workload frequency-scaling law (paper Equation 1, from
//! Mubeen \[51\]).
//!
//! ```text
//! Util_{t+1} = Util_t × (p × F0/F1 + (1 − p)),   p = ΔPperf/ΔAperf
//! ```
//!
//! Productive (non-stalled) cycles shrink proportionally with a faster
//! clock; stalled cycles (memory waits) do not. The auto-scaler uses the
//! forward form to predict the effect of a frequency change and the
//! inverse form to pick the cheapest frequency that keeps utilization
//! under a threshold.

/// Predicts utilization after changing core frequency from `f0` to `f1`.
///
/// `productivity` is `ΔPperf/ΔAperf ∈ [0, 1]`; frequencies are in any
/// consistent unit (Hz, MHz, GHz).
///
/// # Panics
///
/// Panics if `util` or `productivity` is outside `[0, 1]`, or either
/// frequency is not strictly positive.
///
/// # Example
///
/// ```
/// use ic_telemetry::eq1::predict_utilization;
///
/// // A half-stalled workload benefits only half as much.
/// let u = predict_utilization(0.8, 0.5, 3.4, 4.1);
/// assert!((u - 0.8 * (0.5 * 3.4 / 4.1 + 0.5)).abs() < 1e-12);
/// ```
pub fn predict_utilization(util: f64, productivity: f64, f0: f64, f1: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&util),
        "utilization {util} outside [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&productivity),
        "productivity {productivity} outside [0, 1]"
    );
    assert!(f0 > 0.0 && f1 > 0.0, "frequencies must be positive");
    util * (productivity * f0 / f1 + (1.0 - productivity))
}

/// The minimum frequency from `candidates` (any order) that keeps
/// predicted utilization at or below `threshold`, or `None` if even the
/// fastest candidate cannot. "Minimum" because overclocking costs power
/// and lifetime, so the auto-scaler picks the least frequency that
/// satisfies the constraint (paper Section VI-D).
///
/// # Panics
///
/// Panics on the same invalid inputs as [`predict_utilization`], or if
/// `candidates` is empty.
pub fn min_frequency_for_threshold(
    util: f64,
    productivity: f64,
    f0: f64,
    candidates: &[f64],
    threshold: f64,
) -> Option<f64> {
    assert!(!candidates.is_empty(), "no candidate frequencies");
    let mut sorted: Vec<f64> = candidates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
    sorted
        .into_iter()
        .find(|&f1| predict_utilization(util, productivity, f0, f1) <= threshold)
}

/// The maximum frequency from `candidates` at which predicted
/// utilization stays *above* `threshold` — used for scale-*down*
/// decisions: drop frequency as far as possible without pushing
/// utilization over the scale-up threshold again.
///
/// Returns the lowest candidate if all of them keep utilization at or
/// below the threshold.
///
/// # Panics
///
/// Panics on invalid inputs or an empty candidate list.
pub fn max_frequency_within_threshold(
    util: f64,
    productivity: f64,
    f0: f64,
    candidates: &[f64],
    threshold: f64,
) -> f64 {
    assert!(!candidates.is_empty(), "no candidate frequencies");
    let mut sorted: Vec<f64> = candidates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
    for &f1 in &sorted {
        if predict_utilization(util, productivity, f0, f1) <= threshold {
            return f1;
        }
    }
    *sorted.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_scalable_workload_scales_inversely() {
        let u = predict_utilization(0.6, 1.0, 3.4, 4.1);
        assert!((u - 0.6 * 3.4 / 4.1).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_workload_is_unmoved() {
        let u = predict_utilization(0.6, 0.0, 3.4, 4.1);
        assert_eq!(u, 0.6);
    }

    #[test]
    fn no_frequency_change_is_identity() {
        for p in [0.0, 0.3, 0.7, 1.0] {
            assert!((predict_utilization(0.5, p, 3.4, 3.4) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn downclocking_raises_utilization() {
        let u = predict_utilization(0.4, 0.8, 4.1, 3.4);
        assert!(u > 0.4);
    }

    #[test]
    fn utilization_monotone_decreasing_in_target_frequency() {
        let mut last = f64::INFINITY;
        for f1 in [3.4, 3.5, 3.7, 3.9, 4.1] {
            let u = predict_utilization(0.7, 0.9, 3.4, f1);
            assert!(u < last);
            last = u;
        }
    }

    #[test]
    fn min_frequency_picks_cheapest_sufficient_bin() {
        // The paper's 8 bins between B2 (3.4) and OC1 (4.1).
        let bins: Vec<f64> = (0..8).map(|i| 3.4 + 0.1 * i as f64).collect();
        let f = min_frequency_for_threshold(0.45, 1.0, 3.4, &bins, 0.40).unwrap();
        // Need util×3.4/f1 ≤ 0.40 → f1 ≥ 3.825 → first bin 3.9.
        assert!((f - 3.9).abs() < 1e-9);
    }

    #[test]
    fn min_frequency_none_when_unreachable() {
        let bins = [3.4, 3.5];
        // Memory-bound: no frequency helps.
        assert_eq!(min_frequency_for_threshold(0.6, 0.0, 3.4, &bins, 0.4), None);
    }

    #[test]
    fn max_frequency_within_threshold_falls_back_to_fastest() {
        let bins = [3.4, 3.7, 4.1];
        // Very high utilization: nothing satisfies, return fastest.
        let f = max_frequency_within_threshold(1.0, 1.0, 3.4, &bins, 0.2);
        assert_eq!(f, 4.1);
        // Low utilization: the slowest bin already satisfies.
        let f = max_frequency_within_threshold(0.1, 1.0, 3.4, &bins, 0.4);
        assert_eq!(f, 3.4);
    }

    #[test]
    fn candidates_order_does_not_matter() {
        let a = min_frequency_for_threshold(0.5, 1.0, 3.4, &[4.1, 3.4, 3.8], 0.45);
        let b = min_frequency_for_threshold(0.5, 1.0, 3.4, &[3.4, 3.8, 4.1], 0.45);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_utilization_panics() {
        let _ = predict_utilization(1.5, 0.5, 3.4, 4.1);
    }
}
