//! Hardware-counter emulation and the workload frequency-scaling law
//! (paper Section VI-D).
//!
//! The paper's auto-scaler decides *whether and how much* to overclock
//! from two architecture-independent per-core counters:
//!
//! * **Aperf** — cycles the core is active and running,
//! * **Pperf** — like Aperf, but excluding cycles where the active core
//!   is stalled on a dependency (e.g. a memory access).
//!
//! The ratio `ΔPperf/ΔAperf` measures how *frequency-scalable* the
//! running workload is, and feeds the scaling law of Mubeen \[51\], the
//! paper's Equation 1:
//!
//! ```text
//! Util' = Util × (ΔPperf/ΔAperf × F0/F1 + (1 − ΔPperf/ΔAperf))
//! ```
//!
//! Modules: [`counters`] emulates the counters for simulated cores;
//! [`eq1`] implements the law and its inversion (the minimum frequency
//! that keeps utilization under a threshold).
//!
//! # Example
//!
//! ```
//! use ic_telemetry::eq1::predict_utilization;
//!
//! // A fully CPU-bound workload (productivity 1.0) at 60 % utilization
//! // drops to ~50 % when overclocked from 3.4 to 4.1 GHz.
//! let util = predict_utilization(0.60, 1.0, 3.4e9, 4.1e9);
//! assert!((util - 0.60 * 3.4 / 4.1).abs() < 1e-12);
//! ```

pub mod counters;
pub mod eq1;

pub use counters::{CoreCounters, CounterDelta, CounterSample};
