//! Per-core Aperf/Pperf counter emulation.
//!
//! Real hardware exposes these as free-running MSRs; the auto-scaler
//! samples them periodically and works with deltas. [`CoreCounters`]
//! plays the MSR role for simulated cores: the workload model advances
//! it with (busy time, frequency, stall fraction) and consumers take
//! [`CounterSample`] snapshots and compute [`CounterDelta`]s.

use serde::{Deserialize, Serialize};

/// Free-running activity counters for one core.
///
/// # Example
///
/// ```
/// use ic_telemetry::counters::CoreCounters;
///
/// let mut c = CoreCounters::new();
/// let before = c.sample(0.0);
/// // 1 s busy at 3.4 GHz with 25 % of active cycles stalled on memory.
/// c.advance(1.0, 3.4e9, 0.25);
/// let delta = c.sample(1.0).since(&before);
/// assert!((delta.productivity() - 0.75).abs() < 1e-12);
/// assert!((delta.utilization() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreCounters {
    aperf: f64,
    pperf: f64,
    busy_seconds: f64,
}

impl CoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CoreCounters::default()
    }

    /// Advances the counters by `busy_s` seconds of active execution at
    /// `freq_hz`, with `stall_fraction` of active cycles stalled on
    /// dependencies (those cycles count toward Aperf but not Pperf).
    ///
    /// # Panics
    ///
    /// Panics if `busy_s` or `freq_hz` is negative/non-finite, or
    /// `stall_fraction` is outside `[0, 1]`.
    pub fn advance(&mut self, busy_s: f64, freq_hz: f64, stall_fraction: f64) {
        assert!(busy_s.is_finite() && busy_s >= 0.0, "invalid busy time");
        assert!(freq_hz.is_finite() && freq_hz >= 0.0, "invalid frequency");
        assert!(
            (0.0..=1.0).contains(&stall_fraction),
            "stall fraction {stall_fraction} outside [0, 1]"
        );
        let cycles = busy_s * freq_hz;
        self.aperf += cycles;
        self.pperf += cycles * (1.0 - stall_fraction);
        self.busy_seconds += busy_s;
    }

    /// Takes a snapshot at wall-clock time `wall_s` (seconds since the
    /// core started).
    pub fn sample(&self, wall_s: f64) -> CounterSample {
        CounterSample {
            aperf: self.aperf,
            pperf: self.pperf,
            busy_seconds: self.busy_seconds,
            wall_seconds: wall_s,
        }
    }
}

/// A point-in-time counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    aperf: f64,
    pperf: f64,
    busy_seconds: f64,
    wall_seconds: f64,
}

impl CounterSample {
    /// The delta from an `earlier` snapshot to this one.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is actually later (counters are monotonic).
    pub fn since(&self, earlier: &CounterSample) -> CounterDelta {
        assert!(
            self.aperf >= earlier.aperf && self.wall_seconds >= earlier.wall_seconds,
            "snapshots out of order"
        );
        CounterDelta {
            d_aperf: self.aperf - earlier.aperf,
            d_pperf: self.pperf - earlier.pperf,
            d_busy: self.busy_seconds - earlier.busy_seconds,
            d_wall: self.wall_seconds - earlier.wall_seconds,
        }
    }
}

/// The change in counters over a sampling interval — the auto-scaler's
/// raw telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterDelta {
    d_aperf: f64,
    d_pperf: f64,
    d_busy: f64,
    d_wall: f64,
}

impl CounterDelta {
    /// `ΔPperf / ΔAperf`: the fraction of active cycles doing productive
    /// (non-stalled) work. 1.0 means perfectly frequency-scalable; 0.0
    /// means entirely stall-bound. Returns 1.0 for an idle interval
    /// (nothing ran, so nothing limits scaling).
    pub fn productivity(&self) -> f64 {
        if self.d_aperf <= 0.0 {
            1.0
        } else {
            (self.d_pperf / self.d_aperf).clamp(0.0, 1.0)
        }
    }

    /// Busy time / wall time over the interval, in `[0, 1]`. Returns 0
    /// for a zero-length interval.
    pub fn utilization(&self) -> f64 {
        if self.d_wall <= 0.0 {
            0.0
        } else {
            (self.d_busy / self.d_wall).clamp(0.0, 1.0)
        }
    }

    /// Active cycles in the interval.
    pub fn d_aperf(&self) -> f64 {
        self.d_aperf
    }

    /// Busy seconds in the interval (for multi-core aggregates this can
    /// exceed the wall-clock span).
    pub fn d_busy_seconds(&self) -> f64 {
        self.d_busy
    }

    /// Wall-clock seconds in the interval.
    pub fn d_wall_seconds(&self) -> f64 {
        self.d_wall
    }

    /// Productive cycles in the interval.
    pub fn d_pperf(&self) -> f64 {
        self.d_pperf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn productivity_reflects_stall_fraction() {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(2.0, 3.0e9, 0.4);
        let d = c.sample(2.0).since(&t0);
        assert!((d.productivity() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_busy_over_wall() {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(1.5, 3.0e9, 0.0);
        let d = c.sample(3.0).since(&t0);
        assert!((d.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_interval_is_fully_scalable_by_convention() {
        let c = CoreCounters::new();
        let t0 = c.sample(0.0);
        let d = c.sample(10.0).since(&t0);
        assert_eq!(d.productivity(), 1.0);
        assert_eq!(d.utilization(), 0.0);
    }

    #[test]
    fn mixed_phases_average_correctly() {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(1.0, 2.0e9, 0.0); // 2e9 cycles, all productive
        c.advance(1.0, 2.0e9, 1.0); // 2e9 cycles, all stalled
        let d = c.sample(2.0).since(&t0);
        assert!((d.productivity() - 0.5).abs() < 1e-12);
        assert_eq!(d.d_aperf(), 4.0e9);
        assert_eq!(d.d_pperf(), 2.0e9);
    }

    #[test]
    fn deltas_compose_across_intervals() {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(1.0, 1e9, 0.2);
        let t1 = c.sample(1.0);
        c.advance(1.0, 1e9, 0.2);
        let t2 = c.sample(2.0);
        let whole = t2.since(&t0);
        let first = t1.since(&t0);
        let second = t2.since(&t1);
        assert!((whole.d_aperf() - first.d_aperf() - second.d_aperf()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_snapshots_panic() {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(1.0, 1e9, 0.0);
        let t1 = c.sample(1.0);
        let _ = t0.since(&t1);
    }

    #[test]
    #[should_panic(expected = "stall fraction")]
    fn bad_stall_fraction_panics() {
        CoreCounters::new().advance(1.0, 1e9, 1.5);
    }
}
