//! TCO sensitivity analysis: how robust are the −7 %/−4 % headline
//! savings to the assumptions behind them?
//!
//! Table VI bakes in three load-bearing assumptions: the PUE gap
//! between evaporative air and 2PIC (drives the construction/energy/
//! operations amortization), the immersion capital cost (tanks +
//! fluid), and the overclocking energy premium (the conservative
//! "always +200 W" worst case). This module re-derives the bottom line
//! as those inputs move, so an operator can see where the business case
//! breaks.

use crate::{CoolingScenario, TcoModel};
use serde::{Deserialize, Serialize};

/// The tunable inputs behind the Table VI deltas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoInputs {
    /// Fractional total-power reclaim from the PUE improvement
    /// (paper: 1 − 1.03/1.20 ≈ 0.14).
    pub pue_reclaim: f64,
    /// Immersion capital (tanks + fluid) as percent of baseline TCO
    /// (paper: +1).
    pub immersion_pct: f64,
    /// Energy premium of always-on overclocking as percent of baseline
    /// TCO (paper: +2, cancelling the 2PIC energy saving).
    pub oc_energy_pct: f64,
    /// Power-delivery upgrade cost as percent of baseline TCO
    /// (paper: +1, cancelling the server saving).
    pub power_delivery_pct: f64,
}

impl TcoInputs {
    /// The paper's inputs.
    pub fn paper() -> Self {
        TcoInputs {
            pue_reclaim: 0.14,
            immersion_pct: 1.0,
            oc_energy_pct: 2.0,
            power_delivery_pct: 1.0,
        }
    }

    /// Derives the scenario bottom lines from the inputs. The
    /// PUE-driven amortization (construction −2, energy −2, operations
    /// −2, design −2, minus network +1 in the paper) scales linearly
    /// with the reclaim fraction; servers −1 and the add-on costs are
    /// taken directly.
    ///
    /// Returns `(non_oc_relative, oc_relative)` cost per physical core.
    pub fn bottom_lines(&self) -> (f64, f64) {
        // At the paper's 0.14 reclaim the PUE-driven block (construction,
        // energy, operations, design amortization net of the network
        // add) contributes −7 percentage points; the server saving −1
        // and the immersion capital +1 then cancel. Scale the PUE block
        // with the reclaim fraction.
        let amortization = -7.0 * self.pue_reclaim / 0.14;
        let servers = -1.0;
        let non_oc = amortization + servers + self.immersion_pct;
        // The OC column adds the power-delivery upgrade (which erased
        // the server saving in the paper) and the overclocking energy
        // premium (which erased the energy saving).
        let oc = non_oc + self.power_delivery_pct + self.oc_energy_pct;
        (1.0 + non_oc / 100.0, 1.0 + oc / 100.0)
    }

    /// `true` if non-overclockable 2PIC still beats air under these
    /// inputs.
    pub fn non_oc_still_wins(&self) -> bool {
        self.bottom_lines().0 < 1.0
    }

    /// `true` if overclockable 2PIC still beats air.
    pub fn oc_still_wins(&self) -> bool {
        self.bottom_lines().1 < 1.0
    }

    /// The immersion capital cost (percent of baseline TCO) at which
    /// the non-OC business case breaks even, holding other inputs.
    pub fn breakeven_immersion_pct(&self) -> f64 {
        // non_oc = amortization + servers + immersion = 0.
        let amortization = -7.0 * self.pue_reclaim / 0.14;
        -(amortization - 1.0)
    }
}

/// Sweeps one input across a range and reports the two bottom lines at
/// each point: `(value, non_oc_relative, oc_relative)`.
pub fn sweep<F>(values: &[f64], mut apply: F) -> Vec<(f64, f64, f64)>
where
    F: FnMut(f64) -> TcoInputs,
{
    values
        .iter()
        .map(|&v| {
            let (non_oc, oc) = apply(v).bottom_lines();
            (v, non_oc, oc)
        })
        .collect()
}

/// Consistency check used in tests: the derivation must agree with the
/// literal Table VI model at the paper's inputs.
pub fn matches_table6(model: &TcoModel) -> bool {
    let (non_oc, oc) = TcoInputs::paper().bottom_lines();
    (non_oc - model.cost_per_pcore_relative(CoolingScenario::NonOverclockable2pic)).abs() < 1e-9
        && (oc - model.cost_per_pcore_relative(CoolingScenario::Overclockable2pic)).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_reproduce_table6() {
        assert!(matches_table6(&TcoModel::paper()));
        let (non_oc, oc) = TcoInputs::paper().bottom_lines();
        assert!((non_oc - 0.93).abs() < 1e-9);
        assert!((oc - 0.96).abs() < 1e-9);
    }

    #[test]
    fn smaller_pue_gap_shrinks_the_savings() {
        // Against a better air baseline (water-side at peak 1.25 the gap
        // is bigger; against an already-efficient 1.08 facility it
        // nearly vanishes).
        let tighter = TcoInputs {
            pue_reclaim: 0.05,
            ..TcoInputs::paper()
        };
        let (non_oc, oc) = tighter.bottom_lines();
        assert!(non_oc > 0.93);
        assert!(oc > 0.96);
        // The non-OC case survives; the OC case just breaks even.
        assert!(tighter.non_oc_still_wins());
        assert!(!tighter.oc_still_wins() || oc >= 0.99);
    }

    #[test]
    fn expensive_immersion_breaks_the_case() {
        let pricey = TcoInputs {
            immersion_pct: 9.0,
            ..TcoInputs::paper()
        };
        assert!(!pricey.non_oc_still_wins());
        // Break-even sits at the paper-implied +8 points.
        let be = TcoInputs::paper().breakeven_immersion_pct();
        assert!((be - 8.0).abs() < 1e-9, "breakeven {be}");
    }

    #[test]
    fn oc_energy_premium_moves_only_the_oc_column() {
        let hungry = TcoInputs {
            oc_energy_pct: 4.0,
            ..TcoInputs::paper()
        };
        let (non_oc, oc) = hungry.bottom_lines();
        assert!((non_oc - 0.93).abs() < 1e-9, "non-OC unaffected");
        assert!((oc - 0.98).abs() < 1e-9, "OC pays the premium: {oc}");
    }

    #[test]
    fn sweep_is_monotone_in_pue_reclaim() {
        let points = sweep(&[0.02, 0.06, 0.10, 0.14], |v| TcoInputs {
            pue_reclaim: v,
            ..TcoInputs::paper()
        });
        for pair in points.windows(2) {
            assert!(pair[1].1 < pair[0].1, "more reclaim, cheaper non-OC");
            assert!(pair[1].2 < pair[0].2, "more reclaim, cheaper OC");
        }
    }
}
