//! Total-cost-of-ownership model for air-cooled and 2PIC datacenters
//! (paper Section IV "TCO" / Table VI, and the oversubscription TCO of
//! Section VI-C).
//!
//! The paper's TCO analysis compares a direct-evaporative hyperscale
//! baseline with non-overclockable and overclockable 2PIC datacenters,
//! reporting per-component deltas relative to the baseline total (Table
//! VI):
//!
//! * non-overclockable 2PIC: **−7 %** cost per physical core — the PUE
//!   reclaim lets the same facility power feed more servers, amortizing
//!   construction/operations/energy, minus small immersion costs;
//! * overclockable 2PIC: **−4 %** — power-delivery upgrades and the
//!   extra overclocking energy give back 3 points;
//! * overclockable 2PIC **with 10 % core oversubscription**: **−13 %
//!   per virtual core** versus air (Section VI-C), since the same
//!   hardware sells 10 % more vcores with overclocking compensating
//!   contention; non-overclockable 2PIC gains ~10 % from the same
//!   amortization alone.
//!
//! # Example
//!
//! ```
//! use ic_tco::{CoolingScenario, TcoModel};
//!
//! let tco = TcoModel::paper();
//! let oc = tco.cost_per_pcore_relative(CoolingScenario::Overclockable2pic);
//! assert!((oc - 0.96).abs() < 1e-9); // −4 % per physical core
//! let vcore = tco.cost_per_vcore_relative(CoolingScenario::Overclockable2pic, 1.10);
//! assert!((vcore - 0.87).abs() < 0.01); // −13 % per virtual core
//! ```

pub mod sensitivity;

use serde::{Deserialize, Serialize};
use std::fmt;

/// The datacenter designs Table VI compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoolingScenario {
    /// Direct-evaporative air-cooled hyperscale datacenter (baseline).
    AirBaseline,
    /// 2PIC with stock (TDP-limited) servers.
    NonOverclockable2pic,
    /// 2PIC with overclock-capable servers and upgraded power delivery.
    Overclockable2pic,
}

impl CoolingScenario {
    /// The Table VI column label.
    pub fn label(self) -> &'static str {
        match self {
            CoolingScenario::AirBaseline => "Air baseline",
            CoolingScenario::NonOverclockable2pic => "Non-overclockable 2PIC",
            CoolingScenario::Overclockable2pic => "Overclockable 2PIC",
        }
    }
}

/// The Table VI cost rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostComponent {
    /// Server hardware.
    Servers,
    /// Network gear (rises with 2PIC: more servers per facility).
    Network,
    /// Datacenter construction.
    DcConstruction,
    /// Energy.
    Energy,
    /// Operations.
    Operations,
    /// Design, taxes, and fees.
    DesignTaxesFees,
    /// Tanks and dielectric fluid.
    Immersion,
}

impl CostComponent {
    /// All rows in Table VI order.
    pub fn all() -> [CostComponent; 7] {
        [
            CostComponent::Servers,
            CostComponent::Network,
            CostComponent::DcConstruction,
            CostComponent::Energy,
            CostComponent::Operations,
            CostComponent::DesignTaxesFees,
            CostComponent::Immersion,
        ]
    }

    /// The Table VI row label.
    pub fn label(self) -> &'static str {
        match self {
            CostComponent::Servers => "Servers",
            CostComponent::Network => "Network",
            CostComponent::DcConstruction => "DC construction",
            CostComponent::Energy => "Energy",
            CostComponent::Operations => "Operations",
            CostComponent::DesignTaxesFees => "Design, taxes, fees",
            CostComponent::Immersion => "Immersion",
        }
    }
}

impl fmt::Display for CostComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The TCO model: per-component deltas (percent of baseline total) for
/// each scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    non_oc_deltas: [f64; 7],
    oc_deltas: [f64; 7],
}

impl TcoModel {
    /// The paper's Table VI deltas. Blank cells are zero.
    ///
    /// Non-overclockable 2PIC: servers −1 (no fans/sheet metal), network
    /// +1 (more servers), construction −2, energy −2 (PUE), operations
    /// −2, design/taxes/fees −2, immersion +1 → **−7 total**.
    ///
    /// Overclockable 2PIC: the power-delivery upgrade erases the server
    /// saving, and the conservative +200 W/server overclocking energy
    /// (~30 % more server power) brings energy cost back to the air
    /// baseline → **−4 total**.
    pub fn paper() -> Self {
        TcoModel {
            //           Srv   Net  DC    Enrg  Ops   Dsgn  Imm
            non_oc_deltas: [-1.0, 1.0, -2.0, -2.0, -2.0, -2.0, 1.0],
            oc_deltas: [0.0, 1.0, -2.0, 0.0, -2.0, -2.0, 1.0],
        }
    }

    /// The per-component deltas (percent of baseline total) for a
    /// scenario; all zeros for the baseline itself.
    pub fn component_deltas(&self, scenario: CoolingScenario) -> Vec<(CostComponent, f64)> {
        let deltas = match scenario {
            CoolingScenario::AirBaseline => [0.0; 7],
            CoolingScenario::NonOverclockable2pic => self.non_oc_deltas,
            CoolingScenario::Overclockable2pic => self.oc_deltas,
        };
        CostComponent::all().into_iter().zip(deltas).collect()
    }

    /// Cost per physical core relative to the air baseline (1.0 =
    /// baseline).
    pub fn cost_per_pcore_relative(&self, scenario: CoolingScenario) -> f64 {
        let total: f64 = self
            .component_deltas(scenario)
            .iter()
            .map(|&(_, d)| d)
            .sum();
        1.0 + total / 100.0
    }

    /// Cost per *virtual* core relative to the air baseline at a given
    /// vcore:pcore oversubscription ratio. Selling more vcores on the
    /// same hardware amortizes every cost component.
    ///
    /// # Panics
    ///
    /// Panics if `oversub_ratio < 1` or is not finite.
    pub fn cost_per_vcore_relative(&self, scenario: CoolingScenario, oversub_ratio: f64) -> f64 {
        assert!(
            oversub_ratio >= 1.0 && oversub_ratio.is_finite(),
            "invalid oversubscription ratio {oversub_ratio}"
        );
        self.cost_per_pcore_relative(scenario) / oversub_ratio
    }

    /// Renders Table VI as aligned text rows.
    pub fn render_table6(&self) -> String {
        let mut out = format!(
            "{:24}{:>26}{:>22}\n",
            "", "Non-overclockable 2PIC", "Overclockable 2PIC"
        );
        for (i, comp) in CostComponent::all().into_iter().enumerate() {
            let fmt_delta = |d: f64| {
                if d == 0.0 {
                    String::new()
                } else {
                    format!("{:+.0}%", d)
                }
            };
            out.push_str(&format!(
                "{:24}{:>26}{:>22}\n",
                comp.label(),
                fmt_delta(self.non_oc_deltas[i]),
                fmt_delta(self.oc_deltas[i])
            ));
        }
        out.push_str(&format!(
            "{:24}{:>26}{:>22}\n",
            "Cost per physical core",
            format!(
                "{:+.0}%",
                (self.cost_per_pcore_relative(CoolingScenario::NonOverclockable2pic) - 1.0) * 100.0
            ),
            format!(
                "{:+.0}%",
                (self.cost_per_pcore_relative(CoolingScenario::Overclockable2pic) - 1.0) * 100.0
            )
        ));
        out
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        TcoModel::paper()
    }
}

/// An absolute-cost wrapper: anchors the relative model to a baseline
/// cost per physical core (e.g. USD per core-month) for examples and
/// what-if analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsoluteTco {
    baseline_usd_per_core_month: f64,
}

impl AbsoluteTco {
    /// Creates an absolute model.
    ///
    /// # Panics
    ///
    /// Panics if the baseline cost is not positive.
    pub fn new(baseline_usd_per_core_month: f64) -> Self {
        assert!(
            baseline_usd_per_core_month > 0.0 && baseline_usd_per_core_month.is_finite(),
            "invalid baseline cost"
        );
        AbsoluteTco {
            baseline_usd_per_core_month,
        }
    }

    /// Cost per physical core-month for a scenario, USD.
    pub fn usd_per_pcore_month(&self, model: &TcoModel, scenario: CoolingScenario) -> f64 {
        self.baseline_usd_per_core_month * model.cost_per_pcore_relative(scenario)
    }

    /// Annual savings versus the air baseline for a fleet of `pcores`
    /// physical cores, USD.
    pub fn annual_savings_usd(
        &self,
        model: &TcoModel,
        scenario: CoolingScenario,
        pcores: u64,
    ) -> f64 {
        let delta = 1.0 - model.cost_per_pcore_relative(scenario);
        delta * self.baseline_usd_per_core_month * 12.0 * pcores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_bottom_line() {
        let m = TcoModel::paper();
        assert!(
            (m.cost_per_pcore_relative(CoolingScenario::NonOverclockable2pic) - 0.93).abs() < 1e-9
        );
        assert!(
            (m.cost_per_pcore_relative(CoolingScenario::Overclockable2pic) - 0.96).abs() < 1e-9
        );
        assert_eq!(m.cost_per_pcore_relative(CoolingScenario::AirBaseline), 1.0);
    }

    #[test]
    fn overclockability_costs_3_points() {
        // "the capability to overclock increases the cost per physical
        // core by 3 %" versus non-overclockable 2PIC.
        let m = TcoModel::paper();
        let non_oc = m.cost_per_pcore_relative(CoolingScenario::NonOverclockable2pic);
        let oc = m.cost_per_pcore_relative(CoolingScenario::Overclockable2pic);
        assert!((oc - non_oc - 0.03).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_reaches_minus_13_pct_per_vcore() {
        let m = TcoModel::paper();
        let v = m.cost_per_vcore_relative(CoolingScenario::Overclockable2pic, 1.10);
        assert!((v - 0.873).abs() < 0.005, "vcore cost {v}");
    }

    #[test]
    fn non_oc_oversubscription_amortizes_about_10_pct() {
        // Non-overclockable 2PIC gains ~10 % from amortization alone
        // (relative to itself).
        let m = TcoModel::paper();
        let without = m.cost_per_vcore_relative(CoolingScenario::NonOverclockable2pic, 1.0);
        let with = m.cost_per_vcore_relative(CoolingScenario::NonOverclockable2pic, 1.10);
        let gain = 1.0 - with / without;
        assert!((gain - 0.0909).abs() < 0.001, "gain {gain}");
    }

    #[test]
    fn component_deltas_match_table6() {
        let m = TcoModel::paper();
        let non_oc = m.component_deltas(CoolingScenario::NonOverclockable2pic);
        assert_eq!(non_oc[0], (CostComponent::Servers, -1.0));
        assert_eq!(non_oc[1], (CostComponent::Network, 1.0));
        assert_eq!(non_oc[6], (CostComponent::Immersion, 1.0));
        let oc = m.component_deltas(CoolingScenario::Overclockable2pic);
        // Power-delivery upgrades erase the server saving; energy
        // returns to baseline.
        assert_eq!(oc[0], (CostComponent::Servers, 0.0));
        assert_eq!(oc[3], (CostComponent::Energy, 0.0));
    }

    #[test]
    fn baseline_deltas_are_zero() {
        let m = TcoModel::paper();
        assert!(m
            .component_deltas(CoolingScenario::AirBaseline)
            .iter()
            .all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn rendered_table_contains_bottom_line() {
        let text = TcoModel::paper().render_table6();
        assert!(text.contains("Cost per physical core"));
        assert!(text.contains("-7%"));
        assert!(text.contains("-4%"));
    }

    #[test]
    fn absolute_model_scales() {
        let m = TcoModel::paper();
        let abs = AbsoluteTco::new(20.0);
        let oc = abs.usd_per_pcore_month(&m, CoolingScenario::Overclockable2pic);
        assert!((oc - 19.2).abs() < 1e-9);
        // A million-core fleet at −7 % saves 7 % × $20 × 12 × 1e6.
        let save = abs.annual_savings_usd(&m, CoolingScenario::NonOverclockable2pic, 1_000_000);
        assert!((save - 0.07 * 20.0 * 12.0 * 1e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid oversubscription")]
    fn undersubscription_panics() {
        TcoModel::paper().cost_per_vcore_relative(CoolingScenario::AirBaseline, 0.9);
    }

    #[test]
    fn labels() {
        assert_eq!(
            CoolingScenario::Overclockable2pic.label(),
            "Overclockable 2PIC"
        );
        assert_eq!(CostComponent::DcConstruction.to_string(), "DC construction");
    }
}
