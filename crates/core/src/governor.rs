//! The overclock governor: "the highest safe frequency right now".
//!
//! Section IV's takeaways enumerate the constraints overclocking must
//! respect: power delivery limits (Takeaway 1), component lifetime
//! (Takeaway 2), and computational stability (Takeaway 3). The governor
//! intersects all three:
//!
//! 1. **Stability** — never exceed the validated stable ratio (+23 %),
//!    or whatever ratio the correctable-error budget allows.
//! 2. **Lifetime** — invert the composite lifetime model: the highest
//!    junction temperature that still meets the service-life target,
//!    converted through the thermal interface into a power limit and
//!    through the SKU's power model into a frequency.
//! 3. **Power** — respect the socket's granted power budget from the
//!    datacenter's priority-aware allocator.
//!
//! The answer is the bin-aligned minimum of the three ceilings.

use crate::domains::OperatingDomains;
use ic_obs::json::Value;
use ic_obs::trace::{TraceHandle, TraceLevel};
use ic_power::cache::SteadyStateCache;
use ic_power::cpu::CpuSku;
use ic_power::units::Frequency;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::stability::StabilityModel;
use ic_sim::time::SimTime;
use ic_thermal::junction::ThermalInterface;
use serde::{Deserialize, Serialize};

/// Static configuration of a governor instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// The service-life target the fleet must meet, years.
    pub target_lifetime_years: f64,
    /// The minimum junction temperature the part cycles to (fluid
    /// boiling point for 2PIC).
    pub tj_min_c: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            target_lifetime_years: 5.0,
            tj_min_c: 34.0, // HFE-7000
        }
    }
}

/// The governor's answer, with the binding constraint made explicit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorDecision {
    /// The granted frequency.
    pub frequency: Frequency,
    /// The ceiling imposed by stability.
    pub stability_ceiling: Frequency,
    /// The ceiling imposed by the lifetime budget.
    pub lifetime_ceiling: Frequency,
    /// The ceiling imposed by the power budget.
    pub power_ceiling: Frequency,
    /// Which constraint bound the decision.
    pub binding: Constraint,
}

/// The constraint that determined a [`GovernorDecision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// The request itself was lower than every ceiling.
    Request,
    /// Computational stability bound the grant.
    Stability,
    /// The lifetime budget bound the grant.
    Lifetime,
    /// The power budget bound the grant.
    Power,
}

impl Constraint {
    /// The lowercase name used in trace and metric output.
    pub fn name(self) -> &'static str {
        match self {
            Constraint::Request => "request",
            Constraint::Stability => "stability",
            Constraint::Lifetime => "lifetime",
            Constraint::Power => "power",
        }
    }
}

/// The overclock governor for one (SKU, cooling) pair.
pub struct OverclockGovernor {
    sku: CpuSku,
    iface: ThermalInterface,
    lifetime: CompositeLifetimeModel,
    stability: StabilityModel,
    config: GovernorConfig,
    /// Every ceiling search walks the same bin ladder through the same
    /// power/temperature fixed points; the memo table makes repeated
    /// `decide` calls cost one solve per distinct operating point over
    /// the governor's lifetime.
    cache: SteadyStateCache,
}

impl std::fmt::Debug for OverclockGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverclockGovernor")
            .field("sku", &self.sku.name())
            .field("config", &self.config)
            .finish()
    }
}

impl OverclockGovernor {
    /// Creates a governor.
    pub fn new(
        sku: CpuSku,
        iface: ThermalInterface,
        lifetime: CompositeLifetimeModel,
        stability: StabilityModel,
        config: GovernorConfig,
    ) -> Self {
        OverclockGovernor {
            sku,
            iface,
            lifetime,
            stability,
            config,
            cache: SteadyStateCache::new(),
        }
    }

    /// The governor's steady-state memo table (hit-rate inspection).
    pub fn cache(&self) -> &SteadyStateCache {
        &self.cache
    }

    /// Batch-solves the entire ceiling-search ladder — every bin the
    /// lifetime and power searches can visit, 40 bins up from base —
    /// into the memo table in one structure-of-arrays pass. The batch
    /// solver is bitwise-equal to the scalar path, so every later
    /// [`decide`](Self::decide) returns exactly what it would have
    /// computed lazily; only the solve cost moves up front.
    pub fn prewarm(&self) {
        let mut ladder: Vec<(Frequency, ic_power::units::Voltage)> = Vec::with_capacity(40);
        let mut f = self.sku.base();
        for _ in 0..40 {
            f = f.step_bins(1);
            ladder.push((f, self.sku.voltage_for(f)));
        }
        let points: Vec<ic_power::batch::BatchPoint<'_>> = ladder
            .iter()
            .map(|&(f, v)| ic_power::batch::BatchPoint {
                iface: &self.iface,
                f,
                v,
            })
            .collect();
        self.cache.steady_state_batch(&self.sku, &points);
    }

    /// The highest frequency the stability envelope permits: the stable
    /// ratio applied to the 2PIC all-core turbo.
    pub fn stability_ceiling(&self) -> Frequency {
        let turbo = self.sku.air_turbo().step_bins(1);
        Frequency::from_mhz(
            (turbo.mhz() as f64 * self.stability.stable_ceiling_ratio()).floor() as u32,
        )
    }

    /// The highest frequency whose steady-state junction temperature
    /// and voltage still project to the target lifetime. Searches bins
    /// upward from base; each candidate's voltage comes from the V/f
    /// curve and its junction temperature from the thermal fixed point.
    pub fn lifetime_ceiling(&self) -> Frequency {
        let mut best = self.sku.base();
        let mut f = self.sku.base();
        for _ in 0..40 {
            f = f.step_bins(1);
            let v = self.sku.voltage_for(f);
            let ss = self.cache.steady_state(&self.sku, &self.iface, f, v);
            let cond = OperatingConditions::new(
                v.volts(),
                ss.tj_c.clamp(self.config.tj_min_c, 149.0),
                self.config.tj_min_c,
            );
            if self.lifetime.lifetime_years(&cond) >= self.config.target_lifetime_years {
                best = f;
            } else {
                break;
            }
        }
        best
    }

    /// The highest frequency whose steady-state power fits inside
    /// `granted_power_w` (e.g. a [`ic_power::capping::PowerGrant`]).
    pub fn power_ceiling(&self, granted_power_w: f64) -> Frequency {
        self.cache
            .max_turbo(&self.sku, &self.iface, granted_power_w)
    }

    /// Grants the highest safe frequency at or below `requested`,
    /// given the socket's power grant.
    pub fn decide(&self, requested: Frequency, granted_power_w: f64) -> GovernorDecision {
        let stability_ceiling = self.stability_ceiling();
        let lifetime_ceiling = self.lifetime_ceiling();
        let power_ceiling = self.power_ceiling(granted_power_w);
        let mut frequency = requested;
        let mut binding = Constraint::Request;
        for (ceiling, constraint) in [
            (stability_ceiling, Constraint::Stability),
            (lifetime_ceiling, Constraint::Lifetime),
            (power_ceiling, Constraint::Power),
        ] {
            if ceiling < frequency {
                frequency = ceiling;
                binding = constraint;
            }
        }
        GovernorDecision {
            frequency,
            stability_ceiling,
            lifetime_ceiling,
            power_ceiling,
            binding,
        }
    }

    /// [`decide`](Self::decide), plus one structured trace record of the
    /// full frequency plan: the budget inputs (requested frequency,
    /// granted power) and every ceiling alongside the chosen bin and the
    /// constraint that bound it.
    pub fn decide_traced(
        &self,
        requested: Frequency,
        granted_power_w: f64,
        now: SimTime,
        trace: &TraceHandle,
    ) -> GovernorDecision {
        let decision = self.decide(requested, granted_power_w);
        trace.borrow_mut().emit(
            now,
            "governor",
            TraceLevel::Info,
            "decision",
            vec![
                ("requested_mhz", Value::U64(requested.mhz() as u64)),
                ("granted_power_w", Value::F64(granted_power_w)),
                (
                    "stability_mhz",
                    Value::U64(decision.stability_ceiling.mhz() as u64),
                ),
                (
                    "lifetime_mhz",
                    Value::U64(decision.lifetime_ceiling.mhz() as u64),
                ),
                ("power_mhz", Value::U64(decision.power_ceiling.mhz() as u64)),
                ("granted_mhz", Value::U64(decision.frequency.mhz() as u64)),
                ("binding", Value::str(decision.binding.name())),
            ],
        );
        decision
    }

    /// The operating-domain map implied by this governor's ceilings.
    pub fn domains(&self) -> OperatingDomains {
        let turbo = self.sku.air_turbo().step_bins(1);
        let green = self.lifetime_ceiling().max(turbo);
        let ceiling = self.stability_ceiling().max(green);
        OperatingDomains::new(
            Frequency::from_mhz(1200),
            self.sku.base(),
            turbo,
            green,
            ceiling,
        )
    }

    /// The SKU under governance.
    pub fn sku(&self) -> &CpuSku {
        &self.sku
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_thermal::fluid::DielectricFluid;

    fn hfe_governor() -> OverclockGovernor {
        OverclockGovernor::new(
            CpuSku::skylake_8180(),
            ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
            CompositeLifetimeModel::fitted_5nm(),
            StabilityModel::paper_characterization(),
            GovernorConfig::default(),
        )
    }

    fn air_governor() -> OverclockGovernor {
        OverclockGovernor::new(
            CpuSku::skylake_8180(),
            ThermalInterface::air(35.0, 12.1, 0.21),
            CompositeLifetimeModel::fitted_5nm(),
            StabilityModel::paper_characterization(),
            GovernorConfig {
                target_lifetime_years: 5.0,
                tj_min_c: 20.0,
            },
        )
    }

    #[test]
    fn stability_ceiling_is_23_pct_over_turbo() {
        let g = hfe_governor();
        let ceiling = g.stability_ceiling();
        // 2.7 GHz 2PIC turbo × 1.23 ≈ 3.3 GHz.
        assert!((ceiling.ghz() - 2.7 * 1.23).abs() < 0.1, "{ceiling}");
    }

    #[test]
    fn immersion_lifetime_ceiling_far_exceeds_airs() {
        let in_tank = hfe_governor().lifetime_ceiling();
        let in_air = air_governor().lifetime_ceiling();
        assert!(
            in_tank.bins_above(in_air) >= 3,
            "tank {in_tank} vs air {in_air}"
        );
    }

    #[test]
    fn generous_budget_grants_the_request_in_the_green_band() {
        let g = hfe_governor();
        let d = g.decide(Frequency::from_ghz(3.0), 400.0);
        assert_eq!(d.frequency, Frequency::from_ghz(3.0));
        assert_eq!(d.binding, Constraint::Request);
    }

    #[test]
    fn power_budget_binds_under_capping() {
        let g = hfe_governor();
        let d = g.decide(Frequency::from_ghz(3.3), 180.0);
        assert_eq!(d.binding, Constraint::Power);
        assert!(d.frequency < Frequency::from_ghz(3.3));
        // The granted frequency really fits the budget.
        let v = g.sku().voltage_for(d.frequency);
        let ss = g.sku().steady_state(
            &ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
            d.frequency,
            v,
        );
        assert!(ss.power_w <= 180.0);
    }

    #[test]
    fn excessive_requests_clamp_to_a_ceiling() {
        let g = hfe_governor();
        let d = g.decide(Frequency::from_ghz(5.0), 1000.0);
        assert!(d.frequency < Frequency::from_ghz(5.0));
        assert_ne!(d.binding, Constraint::Request);
    }

    #[test]
    fn air_cannot_overclock_within_lifetime_budget() {
        let g = air_governor();
        // In air, the lifetime ceiling sits at or barely above turbo.
        let ceiling = g.lifetime_ceiling();
        assert!(
            ceiling <= CpuSku::skylake_8180().air_turbo().step_bins(1),
            "air lifetime ceiling {ceiling}"
        );
    }

    #[test]
    fn decision_reports_all_ceilings() {
        let g = hfe_governor();
        let d = g.decide(Frequency::from_ghz(3.2), 305.0);
        assert!(d.stability_ceiling >= d.frequency);
        assert!(d.lifetime_ceiling >= d.frequency);
        assert!(d.power_ceiling >= d.frequency);
    }

    #[test]
    fn traced_decision_records_inputs_and_binding() {
        let g = hfe_governor();
        let trace = ic_obs::trace::shared_recorder(16);
        let d = g.decide_traced(
            Frequency::from_ghz(3.3),
            180.0,
            SimTime::from_secs(5),
            &trace,
        );
        assert_eq!(d, g.decide(Frequency::from_ghz(3.3), 180.0));
        let rec = trace.borrow();
        assert_eq!(rec.len(), 1);
        let line = rec.to_jsonl();
        assert!(line.contains("\"target\":\"governor\""), "{line}");
        assert!(line.contains("\"kind\":\"decision\""), "{line}");
        assert!(line.contains("\"requested_mhz\":3300"), "{line}");
        assert!(line.contains("\"granted_power_w\":180"), "{line}");
        assert!(line.contains("\"binding\":\"power\""), "{line}");
    }

    #[test]
    fn cached_ceilings_match_the_direct_solver() {
        let g = hfe_governor();
        let iface = ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0);
        for limit in [150.0, 205.0, 305.0, 400.0] {
            assert_eq!(
                g.power_ceiling(limit),
                g.sku().max_turbo(&iface, limit),
                "limit {limit}"
            );
        }
        let first = g.decide(Frequency::from_ghz(3.3), 305.0);
        let second = g.decide(Frequency::from_ghz(3.3), 305.0);
        assert_eq!(first, second);
        assert!(
            g.cache().hit_rate() > 0.5,
            "repeated decisions should be memo-dominated, hit rate {}",
            g.cache().hit_rate()
        );
    }

    #[test]
    fn domains_are_consistent_with_ceilings() {
        let g = hfe_governor();
        let domains = g.domains();
        assert!(domains.has_overclock_domain());
        assert!(domains.green_top() <= domains.ceiling());
    }
}
