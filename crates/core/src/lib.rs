//! The paper's primary contribution as a library: safe, budgeted
//! overclocking for immersion-cooled cloud datacenters.
//!
//! Everything else in the workspace is substrate; this crate is the
//! control plane that Sections IV–V of "Cost-Efficient Overclocking in
//! Immersion-Cooled Datacenters" (ISCA 2021) describe:
//!
//! * [`domains`] — the Figure 4/5 operating-domain model: guaranteed,
//!   turbo, overclocking (green, lifetime-neutral) and aggressive
//!   overclocking (red, lifetime-consuming) frequency bands per cooling
//!   technology.
//! * [`bottleneck`] — counter-based bottleneck analysis: which component
//!   (core, uncore, memory) is worth overclocking for the workload at
//!   hand, from Aperf/Pperf telemetry.
//! * [`governor`] — the overclock governor: combines the power budget
//!   (`ic-power` capping), the lifetime budget (`ic-reliability` wear
//!   tracking), and the stability envelope into one answer: *the highest
//!   safe frequency right now*.
//! * [`usecases`] — orchestrators for the paper's Section V scenarios:
//!   high-performance VMs, dense packing via oversubscription, virtual
//!   buffers, and capacity-crisis bridging.
//!
//! # Example
//!
//! ```
//! use ic_core::domains::OperatingDomains;
//! use ic_power::units::Frequency;
//!
//! let domains = OperatingDomains::skylake_2pic_hfe();
//! let f = Frequency::from_ghz(4.0);
//! assert!(domains.classify(f).is_overclocked());
//! ```

pub mod bottleneck;
pub mod domains;
pub mod fleet;
pub mod governor;
pub mod recommend;
pub mod usecases;

pub use bottleneck::{BottleneckAnalysis, OverclockTarget};
pub use domains::{Domain, OperatingDomains};
pub use governor::{GovernorConfig, GovernorDecision, OverclockGovernor};
