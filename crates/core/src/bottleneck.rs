//! Counter-based bottleneck analysis.
//!
//! "The problem of which component to overclock and when is harder for
//! cloud providers because they usually manage VMs and have little or
//! no knowledge of the workloads running on the VMs" (Section I). The
//! paper's answer is counter-based models (Section V): the
//! Aperf/Pperf productivity ratio says how much of a VM's active time
//! scales with the core clock; the rest is stall time that only uncore
//! or memory overclocking can shorten.

use ic_telemetry::counters::CounterDelta;
use serde::{Deserialize, Serialize};

/// The component a workload would benefit most from overclocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverclockTarget {
    /// Productive cycles dominate: overclock the core.
    Core,
    /// Moderate stalls: overclock the uncore/LLC alongside the core.
    CoreAndUncore,
    /// Stall-dominated: memory overclocking is required for gains.
    Memory,
    /// The VM is mostly idle; overclocking anything wastes power.
    None,
}

/// The outcome of analyzing one telemetry interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BottleneckAnalysis {
    /// The recommended overclock target.
    pub target: OverclockTarget,
    /// The productivity ratio `ΔPperf/ΔAperf` observed.
    pub productivity: f64,
    /// The interval utilization observed.
    pub utilization: f64,
    /// Expected speedup per 1 % of core-frequency increase, in percent
    /// (equals the productivity ratio).
    pub core_sensitivity: f64,
}

/// Tunable classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BottleneckThresholds {
    /// Below this utilization the VM is considered idle.
    pub idle_utilization: f64,
    /// Productivity at or above this ⇒ core-bound.
    pub core_bound: f64,
    /// Productivity at or above this (but below `core_bound`) ⇒ mixed;
    /// below ⇒ memory-bound.
    pub mixed: f64,
}

impl Default for BottleneckThresholds {
    fn default() -> Self {
        BottleneckThresholds {
            idle_utilization: 0.10,
            core_bound: 0.80,
            mixed: 0.50,
        }
    }
}

/// Classifies a counter interval.
///
/// # Example
///
/// ```
/// use ic_core::bottleneck::{analyze, OverclockTarget, BottleneckThresholds};
/// use ic_telemetry::counters::CoreCounters;
///
/// let mut c = CoreCounters::new();
/// let t0 = c.sample(0.0);
/// c.advance(0.9, 3.4e9, 0.05); // busy, barely stalled
/// let delta = c.sample(1.0).since(&t0);
/// let a = analyze(&delta, BottleneckThresholds::default());
/// assert_eq!(a.target, OverclockTarget::Core);
/// ```
pub fn analyze(delta: &CounterDelta, thresholds: BottleneckThresholds) -> BottleneckAnalysis {
    let productivity = delta.productivity();
    let utilization = delta.utilization();
    let target = if utilization < thresholds.idle_utilization {
        OverclockTarget::None
    } else if productivity >= thresholds.core_bound {
        OverclockTarget::Core
    } else if productivity >= thresholds.mixed {
        OverclockTarget::CoreAndUncore
    } else {
        OverclockTarget::Memory
    };
    BottleneckAnalysis {
        target,
        productivity,
        utilization,
        core_sensitivity: productivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_telemetry::counters::CoreCounters;

    fn delta(busy_s: f64, wall_s: f64, stall: f64) -> CounterDelta {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(busy_s, 3.4e9, stall);
        c.sample(wall_s).since(&t0)
    }

    #[test]
    fn compute_bound_targets_core() {
        let a = analyze(&delta(0.8, 1.0, 0.1), BottleneckThresholds::default());
        assert_eq!(a.target, OverclockTarget::Core);
        assert!((a.productivity - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mixed_targets_core_and_uncore() {
        let a = analyze(&delta(0.8, 1.0, 0.35), BottleneckThresholds::default());
        assert_eq!(a.target, OverclockTarget::CoreAndUncore);
    }

    #[test]
    fn stall_bound_targets_memory() {
        let a = analyze(&delta(0.8, 1.0, 0.7), BottleneckThresholds::default());
        assert_eq!(a.target, OverclockTarget::Memory);
    }

    #[test]
    fn idle_vm_gets_nothing() {
        let a = analyze(&delta(0.05, 1.0, 0.0), BottleneckThresholds::default());
        assert_eq!(a.target, OverclockTarget::None);
    }

    #[test]
    fn core_sensitivity_equals_productivity() {
        let a = analyze(&delta(0.6, 1.0, 0.25), BottleneckThresholds::default());
        assert_eq!(a.core_sensitivity, a.productivity);
        assert!((a.core_sensitivity - 0.75).abs() < 1e-12);
    }

    #[test]
    fn custom_thresholds_respected() {
        let strict = BottleneckThresholds {
            idle_utilization: 0.5,
            ..Default::default()
        };
        let a = analyze(&delta(0.3, 1.0, 0.0), strict);
        assert_eq!(a.target, OverclockTarget::None);
    }
}
