//! High-performance VM classes (Section V, Figure 5c).
//!
//! With guaranteed overclocking, a provider can sell VM classes that
//! run above turbo all the time: the regular class stays at base, the
//! turbo class at all-core turbo, and the high-performance class in the
//! green overclocking band — with opportunistic excursions into the red
//! band when the wear budget allows.

use crate::domains::OperatingDomains;
use ic_power::units::Frequency;
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::wear::WearTracker;
use serde::{Deserialize, Serialize};

/// The VM performance classes a provider can sell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmPerformanceClass {
    /// Guaranteed base frequency.
    Regular,
    /// Opportunistic turbo (today's cloud offering).
    Turbo,
    /// Sustained green-band overclocking.
    HighPerformance,
}

impl VmPerformanceClass {
    /// The frequency this class is entitled to under the given domain
    /// map.
    pub fn entitled_frequency(self, domains: &OperatingDomains) -> Frequency {
        match self {
            VmPerformanceClass::Regular => domains.base(),
            VmPerformanceClass::Turbo => domains.turbo(),
            VmPerformanceClass::HighPerformance => domains.green_top(),
        }
    }

    /// The relative price multiplier a provider would charge: scaled by
    /// the frequency entitlement over base (performance is what is
    /// being sold).
    pub fn price_multiplier(self, domains: &OperatingDomains) -> f64 {
        self.entitled_frequency(domains).ratio_to(domains.base())
    }
}

/// Decides red-band excursions for a high-performance VM: allowed only
/// while the host's wear tracker can afford them and the domain map has
/// red headroom.
///
/// # Example
///
/// ```
/// use ic_core::usecases::highperf::{red_band_excursion, VmPerformanceClass};
/// use ic_core::domains::OperatingDomains;
/// use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
/// use ic_reliability::wear::WearTracker;
///
/// let domains = OperatingDomains::skylake_2pic_hfe();
/// let model = CompositeLifetimeModel::fitted_5nm();
/// let wear = WearTracker::new(5.0); // fresh part: credit available
/// let red = OperatingConditions::new(1.02, 68.0, 35.0);
/// let rest = OperatingConditions::new(0.90, 51.0, 35.0);
/// let f = red_band_excursion(&domains, &model, &wear, &red, &rest, 0.25);
/// assert!(f.is_some());
/// ```
pub fn red_band_excursion(
    domains: &OperatingDomains,
    model: &CompositeLifetimeModel,
    wear: &WearTracker,
    red_conditions: &OperatingConditions,
    rest_conditions: &OperatingConditions,
    duration_years: f64,
) -> Option<Frequency> {
    if domains.ceiling() <= domains.green_top() {
        return None; // no red band on this platform
    }
    if wear.can_afford(model, red_conditions, duration_years, rest_conditions) {
        Some(domains.ceiling())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domain;

    fn domains() -> OperatingDomains {
        OperatingDomains::skylake_2pic_hfe()
    }

    #[test]
    fn entitlements_are_ordered() {
        let d = domains();
        let r = VmPerformanceClass::Regular.entitled_frequency(&d);
        let t = VmPerformanceClass::Turbo.entitled_frequency(&d);
        let h = VmPerformanceClass::HighPerformance.entitled_frequency(&d);
        assert!(r < t && t < h);
        assert_eq!(d.classify(h), Domain::OverclockGreen);
    }

    #[test]
    fn high_performance_commands_a_premium() {
        let d = domains();
        assert_eq!(VmPerformanceClass::Regular.price_multiplier(&d), 1.0);
        let hp = VmPerformanceClass::HighPerformance.price_multiplier(&d);
        // 4.18 / 3.1 ≈ 1.35.
        assert!((1.3..1.4).contains(&hp), "multiplier {hp}");
    }

    #[test]
    fn fresh_part_can_take_red_excursions() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let wear = WearTracker::new(5.0);
        let red = OperatingConditions::new(1.02, 68.0, 35.0);
        let rest = OperatingConditions::new(0.90, 51.0, 35.0);
        assert!(red_band_excursion(&domains(), &model, &wear, &red, &rest, 0.2).is_some());
    }

    #[test]
    fn worn_part_is_denied_red_band() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let mut wear = WearTracker::new(5.0);
        // Burn most of the part's life at a harsh point.
        wear.accrue(&model, &OperatingConditions::new(0.98, 101.0, 20.0), 0.6);
        let red = OperatingConditions::new(1.02, 68.0, 35.0);
        let rest = OperatingConditions::new(0.90, 51.0, 35.0);
        assert!(red_band_excursion(&domains(), &model, &wear, &red, &rest, 1.0).is_none());
    }

    #[test]
    fn air_platform_has_no_red_band() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let wear = WearTracker::new(5.0);
        let red = OperatingConditions::new(0.98, 85.0, 20.0);
        let rest = OperatingConditions::new(0.90, 85.0, 20.0);
        assert!(red_band_excursion(
            &OperatingDomains::skylake_air(),
            &model,
            &wear,
            &red,
            &rest,
            0.1
        )
        .is_none());
    }
}
