//! Dense VM packing via oversubscription + overclocking (Section V,
//! Figure 5d; evaluated in Section VI-C).
//!
//! Oversubscribing pcores lets a provider sell more vcores per server;
//! when co-located VMs do contend, the host overclocks so each vcore
//! still receives its entitled cycles. The planner answers: *given an
//! overclock headroom, how much oversubscription keeps performance
//! whole?* — the frequency ratio must cover the contention ratio.

use ic_cluster::placement::Oversubscription;
use ic_power::units::Frequency;
use serde::{Deserialize, Serialize};

/// A plan coupling an oversubscription ratio with the overclock that
/// makes it performance-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingPlan {
    /// The vcore:pcore ratio to sell.
    pub oversubscription: Oversubscription,
    /// The frequency the host must run at when all vcores are busy.
    pub compensating_frequency: Frequency,
    /// The additional vcores per 100 pcores this plan sells.
    pub extra_vcores_per_100_pcores: u32,
}

/// Plans performance-neutral dense packing.
///
/// The worst case is every vcore busy simultaneously: each receives a
/// `pcores/vcores` share of the machine, so compensating requires a
/// frequency of `base × vcores/pcores`, clamped to the green-band
/// ceiling. The sustainable oversubscription ratio is therefore exactly
/// the green headroom ratio (1.23 → up to 23 % more vcores; the paper
/// demonstrates 20 %).
///
/// # Example
///
/// ```
/// use ic_core::usecases::packing::plan_packing;
/// use ic_power::units::Frequency;
///
/// let plan = plan_packing(
///     Frequency::from_ghz(3.4), // base
///     Frequency::from_ghz(4.1), // green ceiling
///     1.20,                      // desired oversubscription
/// ).unwrap();
/// assert_eq!(plan.extra_vcores_per_100_pcores, 20);
/// // 3.4 × 1.2 = 4.08 GHz compensates fully.
/// assert_eq!(plan.compensating_frequency, Frequency::from_mhz(4080));
/// ```
pub fn plan_packing(
    base: Frequency,
    green_ceiling: Frequency,
    desired_ratio: f64,
) -> Option<PackingPlan> {
    assert!(
        desired_ratio >= 1.0 && desired_ratio.is_finite(),
        "invalid oversubscription ratio {desired_ratio}"
    );
    let needed = Frequency::from_mhz((base.mhz() as f64 * desired_ratio).ceil() as u32);
    if needed > green_ceiling {
        return None; // cannot compensate without lifetime cost
    }
    Some(PackingPlan {
        oversubscription: Oversubscription::ratio(desired_ratio),
        compensating_frequency: needed,
        extra_vcores_per_100_pcores: ((desired_ratio - 1.0) * 100.0).round() as u32,
    })
}

/// The maximum performance-neutral oversubscription ratio for a
/// platform: the green headroom.
pub fn max_neutral_ratio(base: Frequency, green_ceiling: Frequency) -> f64 {
    green_ceiling.ratio_to(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_20_pct_packing_plan() {
        let plan = plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1), 1.20).unwrap();
        assert_eq!(plan.extra_vcores_per_100_pcores, 20);
        assert!((plan.oversubscription.as_ratio() - 1.2).abs() < 1e-12);
        assert!(plan.compensating_frequency <= Frequency::from_ghz(4.1));
    }

    #[test]
    fn excessive_ratio_is_rejected() {
        assert!(plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1), 1.30).is_none());
    }

    #[test]
    fn max_neutral_ratio_matches_green_headroom() {
        let r = max_neutral_ratio(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1));
        assert!((r - 4.1 / 3.4).abs() < 1e-9);
        // And a plan at exactly that ratio succeeds.
        assert!(
            plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1), r - 1e-6).is_some()
        );
    }

    #[test]
    fn no_headroom_no_oversubscription() {
        // Air: green ceiling equals base+turbo; ratio 1.0 only.
        assert!(plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(3.4), 1.05).is_none());
        assert!(plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(3.4), 1.0).is_some());
    }

    #[test]
    fn compensating_frequency_scales_with_ratio() {
        let lo = plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1), 1.05).unwrap();
        let hi = plan_packing(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1), 1.15).unwrap();
        assert!(hi.compensating_frequency > lo.compensating_frequency);
    }
}
