//! Capacity-crisis mitigation (Section V, Figure 7).
//!
//! Capacity planning misses — construction delays, equipment
//! shortages, forecast errors — leave demand above supply until new
//! servers land. Overclocking bridges the gap: the installed fleet
//! sells more (oversubscribed, overclock-compensated) vcores, provided
//! memory and storage still fit.

use serde::{Deserialize, Serialize};

/// A point-in-time supply/demand picture, in vcores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacitySnapshot {
    /// Demand forecast, vcores.
    pub demand_vcores: f64,
    /// Installed sellable capacity at 1:1 packing, vcores.
    pub supply_vcores: f64,
}

impl CapacitySnapshot {
    /// The unmet demand at 1:1 packing (0 when supply covers demand).
    pub fn gap_vcores(&self) -> f64 {
        (self.demand_vcores - self.supply_vcores).max(0.0)
    }

    /// Whether overclock-backed oversubscription at `headroom_ratio`
    /// bridges the gap (subject to memory: `memory_limited_ratio` caps
    /// the effective ratio at what stranded memory allows).
    pub fn bridged_by(&self, headroom_ratio: f64, memory_limited_ratio: f64) -> bool {
        let effective = headroom_ratio.min(memory_limited_ratio);
        self.supply_vcores * effective >= self.demand_vcores
    }

    /// The vcores still unmet after applying the effective
    /// oversubscription ratio.
    pub fn residual_gap(&self, headroom_ratio: f64, memory_limited_ratio: f64) -> f64 {
        let effective = headroom_ratio.min(memory_limited_ratio);
        (self.demand_vcores - self.supply_vcores * effective).max(0.0)
    }
}

/// A demand/supply trajectory: the Figure 7 picture, quarter by
/// quarter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityTimeline {
    periods: Vec<CapacitySnapshot>,
}

impl CapacityTimeline {
    /// Builds a timeline from per-period snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `periods` is empty.
    pub fn new(periods: Vec<CapacitySnapshot>) -> Self {
        assert!(!periods.is_empty(), "a timeline needs periods");
        CapacityTimeline { periods }
    }

    /// The periods.
    pub fn periods(&self) -> &[CapacitySnapshot] {
        &self.periods
    }

    /// The number of periods with unmet demand at 1:1 packing.
    pub fn crisis_periods(&self) -> usize {
        self.periods.iter().filter(|p| p.gap_vcores() > 0.0).count()
    }

    /// The number of crisis periods that overclocking bridges.
    pub fn bridged_periods(&self, headroom_ratio: f64, memory_limited_ratio: f64) -> usize {
        self.periods
            .iter()
            .filter(|p| p.gap_vcores() > 0.0 && p.bridged_by(headroom_ratio, memory_limited_ratio))
            .count()
    }

    /// Total denied vcore-periods without and with overclocking — the
    /// area of Figure 7's red region.
    pub fn denied_vcore_periods(
        &self,
        headroom_ratio: f64,
        memory_limited_ratio: f64,
    ) -> (f64, f64) {
        let without: f64 = self.periods.iter().map(|p| p.gap_vcores()).sum();
        let with: f64 = self
            .periods
            .iter()
            .map(|p| p.residual_gap(headroom_ratio, memory_limited_ratio))
            .sum();
        (without, with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(demand: f64, supply: f64) -> CapacitySnapshot {
        CapacitySnapshot {
            demand_vcores: demand,
            supply_vcores: supply,
        }
    }

    #[test]
    fn gap_is_zero_when_supply_covers() {
        assert_eq!(snapshot(90.0, 100.0).gap_vcores(), 0.0);
        assert_eq!(snapshot(120.0, 100.0).gap_vcores(), 20.0);
    }

    #[test]
    fn moderate_gap_is_bridged() {
        let s = snapshot(115.0, 100.0);
        assert!(s.bridged_by(1.20, 1.25));
        assert_eq!(s.residual_gap(1.20, 1.25), 0.0);
    }

    #[test]
    fn memory_limits_the_bridge() {
        let s = snapshot(115.0, 100.0);
        // Plenty of frequency headroom, but stranded memory only covers
        // 10 % more VMs.
        assert!(!s.bridged_by(1.23, 1.10));
        assert!((s.residual_gap(1.23, 1.10) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_counts_crises_and_bridges() {
        let t = CapacityTimeline::new(vec![
            snapshot(80.0, 100.0),
            snapshot(110.0, 100.0),
            snapshot(130.0, 100.0),
            snapshot(100.0, 120.0), // new servers landed
        ]);
        assert_eq!(t.crisis_periods(), 2);
        assert_eq!(t.bridged_periods(1.20, 1.25), 1); // 110 yes, 130 no
        let (without, with) = t.denied_vcore_periods(1.20, 1.25);
        assert!((without - 40.0).abs() < 1e-9);
        assert!((with - 10.0).abs() < 1e-9); // only 130−120 remains
    }

    #[test]
    #[should_panic(expected = "needs periods")]
    fn empty_timeline_panics() {
        let _ = CapacityTimeline::new(vec![]);
    }
}
