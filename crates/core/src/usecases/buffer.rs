//! Virtual failover buffers (Section V, Figure 6).
//!
//! Providers reserve idle capacity so that VMs displaced by
//! infrastructure failures can be re-created. With overclocking, the
//! static buffer becomes *virtual*: all servers run VMs during normal
//! operation, and after a failure the survivors overclock to absorb the
//! displaced load.

use ic_cluster::cluster::{Cluster, FailoverReport};
use ic_power::units::Frequency;
use ic_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The outcome of absorbing a failure with a virtual buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualBufferReport {
    /// The underlying re-placement report.
    pub failover: FailoverReport,
    /// The frequency the surviving servers were raised to.
    pub boosted_frequency: Frequency,
    /// The effective compute deficit after boosting, as a fraction of
    /// the lost capacity (0 = fully absorbed).
    pub residual_deficit: f64,
}

/// Sizes a static buffer: the number of spare servers needed to absorb
/// `tolerated_failures` failures of `server_pcores`-core servers, with
/// no overclocking.
pub fn static_buffer_servers(tolerated_failures: u32) -> u32 {
    tolerated_failures
}

/// The number of spare servers a *virtual* buffer needs: zero as long
/// as the fleet's green-band headroom covers the lost capacity.
///
/// With `n` servers, losing `k` means the survivors must supply
/// `n/(n−k)` of their base throughput; they can, if that ratio is
/// within the green headroom.
///
/// # Panics
///
/// Panics if `tolerated_failures >= fleet_size`, or if
/// `green_headroom_ratio <= 1` (without overclocking headroom a virtual
/// buffer is impossible — use [`static_buffer_servers`]).
pub fn virtual_buffer_servers(
    fleet_size: u32,
    tolerated_failures: u32,
    green_headroom_ratio: f64,
) -> u32 {
    assert!(
        fleet_size > tolerated_failures,
        "cannot lose the whole fleet"
    );
    assert!(
        green_headroom_ratio > 1.0,
        "virtual buffers need overclocking headroom > 1, got {green_headroom_ratio}"
    );
    // total/(total − k) <= r  ⇔  total >= k·r/(r − 1).
    let r = green_headroom_ratio;
    let total_needed = (tolerated_failures as f64 * r / (r - 1.0)).ceil() as u32;
    total_needed.saturating_sub(fleet_size)
}

/// Absorbs a server failure at simulation time `now` by re-creating its
/// VMs and overclocking every surviving server that hosts VMs.
///
/// # Errors
///
/// Propagates [`ic_cluster::cluster::ClusterError`] from the failover.
pub fn absorb_failure(
    cluster: &mut Cluster,
    now: SimTime,
    failed_server: usize,
    boost_to: Frequency,
) -> Result<VirtualBufferReport, ic_cluster::cluster::ClusterError> {
    let failover = cluster.fail_server(now, failed_server)?;
    let n_healthy = cluster
        .servers()
        .iter()
        .filter(|s| !s.is_failed())
        .count()
        .max(1);
    for i in 0..cluster.servers().len() {
        if !cluster.servers()[i].is_failed() {
            cluster.server_mut(i)?.set_frequency(boost_to);
        }
    }
    // Capacity accounting: lost one server of base capacity; gained
    // (ratio − 1) on each survivor.
    let boost_ratio = cluster
        .servers()
        .iter()
        .find(|s| !s.is_failed())
        .map(|s| s.overclock_ratio())
        .unwrap_or(1.0);
    let recovered = (boost_ratio - 1.0) * n_healthy as f64;
    let residual_deficit = (1.0 - recovered).max(0.0);
    Ok(VirtualBufferReport {
        failover,
        boosted_frequency: boost_to,
        residual_deficit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_cluster::placement::{Oversubscription, PlacementPolicy};
    use ic_cluster::server::ServerSpec;
    use ic_cluster::vm::VmSpec;

    fn fleet(n: usize) -> Cluster {
        Cluster::new(
            vec![ServerSpec::open_compute(); n],
            PlacementPolicy::WorstFit,
            Oversubscription::ratio(1.25),
        )
    }

    #[test]
    fn static_buffer_is_one_server_per_failure() {
        assert_eq!(static_buffer_servers(2), 2);
    }

    #[test]
    fn virtual_buffer_vanishes_with_headroom() {
        // 10 servers tolerating 1 failure: survivors need 10/9 ≈ 1.11×,
        // well within the 1.23 green band → zero spares.
        assert_eq!(virtual_buffer_servers(10, 1, 1.23), 0);
        // Tolerating 2 of 10 → 10/8 = 1.25 > 1.23 → one spare makes it
        // 11/9 ≈ 1.22 ✓.
        assert_eq!(virtual_buffer_servers(10, 2, 1.23), 1);
    }

    #[test]
    #[should_panic(expected = "overclocking headroom")]
    fn virtual_buffer_without_headroom_panics() {
        let _ = virtual_buffer_servers(10, 2, 1.0);
    }

    #[test]
    fn absorb_failure_recreates_and_boosts() {
        let mut cluster = fleet(4);
        for _ in 0..12 {
            cluster
                .create_vm(SimTime::ZERO, VmSpec::new(12, 32.0))
                .unwrap();
        }
        let report =
            absorb_failure(&mut cluster, SimTime::ZERO, 0, Frequency::from_ghz(3.3)).unwrap();
        assert!(report.failover.unplaced.is_empty(), "{report:?}");
        assert_eq!(cluster.vm_count(), 12);
        // Survivors are overclocked.
        for (i, s) in cluster.servers().iter().enumerate() {
            if i != 0 {
                assert_eq!(s.frequency(), Frequency::from_ghz(3.3));
            }
        }
        // 3 survivors × 22 % headroom recovers ~66 % of the lost server;
        // the residual is reported honestly.
        assert!(report.residual_deficit < 0.5);
    }

    #[test]
    fn large_fleet_fully_absorbs_one_failure() {
        let mut cluster = fleet(8);
        for _ in 0..16 {
            cluster
                .create_vm(SimTime::ZERO, VmSpec::new(12, 32.0))
                .unwrap();
        }
        let report =
            absorb_failure(&mut cluster, SimTime::ZERO, 3, Frequency::from_ghz(3.3)).unwrap();
        assert!(report.failover.unplaced.is_empty());
        assert_eq!(report.residual_deficit, 0.0, "7 × 0.22 > 1 lost server");
    }
}
