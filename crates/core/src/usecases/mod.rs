//! Orchestrators for the paper's Section V datacenter use-cases.
//!
//! * [`highperf`] — high-performance VM classes running in the green
//!   (and opportunistically red) overclocking bands (Figure 5c).
//! * [`packing`] — dense VM packing: oversubscribe pcores and overclock
//!   to compensate for contention (Figure 5d).
//! * [`buffer`] — replace static failover buffers with virtual ones:
//!   run VMs on all capacity and overclock survivors after a failure
//!   (Figure 6).
//! * [`capacity`] — bridge capacity-crisis gaps by overclocking the
//!   existing fleet (Figure 7).

pub mod buffer;
pub mod capacity;
pub mod highperf;
pub mod packing;
