//! Operating-domain model (paper Figures 4 and 5).
//!
//! A processor's frequency range splits into bands: the **guaranteed**
//! domain between minimum and base frequency, the opportunistic
//! **turbo** domain up to all-core turbo, the **overclocking** domain
//! beyond turbo, and the **non-operating** region past the physical
//! ceiling. Under 2PIC the overclocking domain further splits into a
//! *green* band (up to +23 % — no lifetime loss versus the air-cooled
//! baseline when immersed in HFE-7000, Table V) and a *red* band
//! (lifetime-consuming, to be spent against wear credit).

use ic_power::units::Frequency;
use serde::{Deserialize, Serialize};

/// Where a frequency falls in the operating range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Below the minimum operating frequency.
    BelowMinimum,
    /// Guaranteed: between minimum and base frequency.
    Guaranteed,
    /// Opportunistic turbo: between base and all-core turbo.
    Turbo,
    /// Green overclocking: above turbo with no lifetime penalty
    /// (immersion only).
    OverclockGreen,
    /// Red overclocking: above the green band; spends lifetime credit.
    OverclockRed,
    /// Beyond the physical ceiling: the part will not operate.
    NonOperating,
}

impl Domain {
    /// `true` for either overclocking band.
    pub fn is_overclocked(self) -> bool {
        matches!(self, Domain::OverclockGreen | Domain::OverclockRed)
    }

    /// `true` if running here consumes lifetime faster than the
    /// air-cooled nominal baseline.
    pub fn consumes_lifetime(self) -> bool {
        matches!(self, Domain::OverclockRed)
    }
}

/// The frequency band boundaries of one (processor, cooling) pair.
///
/// # Example
///
/// ```
/// use ic_core::domains::{Domain, OperatingDomains};
/// use ic_power::units::Frequency;
///
/// let d = OperatingDomains::skylake_2pic_hfe();
/// assert_eq!(d.classify(Frequency::from_ghz(3.0)), Domain::Guaranteed);
/// assert_eq!(d.classify(Frequency::from_ghz(4.0)), Domain::OverclockGreen);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingDomains {
    minimum: Frequency,
    base: Frequency,
    turbo: Frequency,
    green_top: Frequency,
    ceiling: Frequency,
}

impl OperatingDomains {
    /// Builds a domain map.
    ///
    /// # Panics
    ///
    /// Panics unless `minimum <= base <= turbo <= green_top <= ceiling`.
    pub fn new(
        minimum: Frequency,
        base: Frequency,
        turbo: Frequency,
        green_top: Frequency,
        ceiling: Frequency,
    ) -> Self {
        assert!(
            minimum <= base && base <= turbo && turbo <= green_top && green_top <= ceiling,
            "domain boundaries must be ordered"
        );
        OperatingDomains {
            minimum,
            base,
            turbo,
            green_top,
            ceiling,
        }
    }

    /// The air-cooled Xeon W-3175X: no overclocking domain at all —
    /// anything past turbo is thermally non-operating (Figure 5a).
    pub fn skylake_air() -> Self {
        let turbo = Frequency::from_ghz(3.4);
        OperatingDomains::new(
            Frequency::from_ghz(1.2),
            Frequency::from_ghz(3.1),
            turbo,
            turbo, // empty green band
            turbo, // and no red band: turbo is the ceiling
        )
    }

    /// The same part immersed in HFE-7000: a green band to +23 % over
    /// turbo (lifetime parity with air, Table V) and a red band up to
    /// the crash ceiling (+35 %).
    pub fn skylake_2pic_hfe() -> Self {
        let turbo = Frequency::from_ghz(3.4);
        OperatingDomains::new(
            Frequency::from_ghz(1.2),
            Frequency::from_ghz(3.1),
            turbo,
            Frequency::from_mhz((turbo.mhz() as f64 * 1.23).round() as u32),
            Frequency::from_mhz((turbo.mhz() as f64 * 1.35).round() as u32),
        )
    }

    /// The minimum operating frequency.
    pub fn minimum(&self) -> Frequency {
        self.minimum
    }

    /// The base (guaranteed) frequency.
    pub fn base(&self) -> Frequency {
        self.base
    }

    /// The all-core turbo frequency.
    pub fn turbo(&self) -> Frequency {
        self.turbo
    }

    /// The top of the lifetime-neutral green band.
    pub fn green_top(&self) -> Frequency {
        self.green_top
    }

    /// The physical ceiling (crash boundary).
    pub fn ceiling(&self) -> Frequency {
        self.ceiling
    }

    /// Classifies a frequency.
    pub fn classify(&self, f: Frequency) -> Domain {
        if f < self.minimum {
            Domain::BelowMinimum
        } else if f <= self.base {
            Domain::Guaranteed
        } else if f <= self.turbo {
            Domain::Turbo
        } else if f <= self.green_top {
            Domain::OverclockGreen
        } else if f <= self.ceiling {
            Domain::OverclockRed
        } else {
            Domain::NonOperating
        }
    }

    /// `true` if this map has any overclocking headroom (immersion).
    pub fn has_overclock_domain(&self) -> bool {
        self.ceiling > self.turbo
    }

    /// The green-band headroom as a ratio over turbo (e.g. 1.23).
    pub fn green_headroom_ratio(&self) -> f64 {
        self.green_top.ratio_to(self.turbo)
    }

    /// The discrete 100 MHz frequency steps from `from` up to `to`
    /// (inclusive), clamped to the operating range — the "8 frequency
    /// bins" the auto-scaler steps through between B2 and OC1.
    pub fn bins_between(&self, from: Frequency, to: Frequency) -> Vec<Frequency> {
        let from = from.clamp(self.minimum, self.ceiling);
        let to = to.clamp(self.minimum, self.ceiling);
        let mut out = Vec::new();
        let mut f = from;
        while f <= to {
            out.push(f);
            if f == to {
                break;
            }
            f = f.step_bins(1).clamp(from, to);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_has_no_overclock_domain() {
        let d = OperatingDomains::skylake_air();
        assert!(!d.has_overclock_domain());
        assert_eq!(d.classify(Frequency::from_ghz(3.5)), Domain::NonOperating);
    }

    #[test]
    fn immersion_opens_green_and_red_bands() {
        let d = OperatingDomains::skylake_2pic_hfe();
        assert!(d.has_overclock_domain());
        assert_eq!(d.classify(Frequency::from_ghz(3.9)), Domain::OverclockGreen);
        assert_eq!(d.classify(Frequency::from_ghz(4.4)), Domain::OverclockRed);
        assert_eq!(d.classify(Frequency::from_ghz(4.7)), Domain::NonOperating);
        assert!((d.green_headroom_ratio() - 1.23).abs() < 0.01);
    }

    #[test]
    fn classification_covers_low_bands() {
        let d = OperatingDomains::skylake_2pic_hfe();
        assert_eq!(d.classify(Frequency::from_ghz(1.0)), Domain::BelowMinimum);
        assert_eq!(d.classify(Frequency::from_ghz(2.0)), Domain::Guaranteed);
        assert_eq!(d.classify(Frequency::from_ghz(3.3)), Domain::Turbo);
    }

    #[test]
    fn domain_predicates() {
        assert!(Domain::OverclockGreen.is_overclocked());
        assert!(Domain::OverclockRed.is_overclocked());
        assert!(!Domain::Turbo.is_overclocked());
        assert!(Domain::OverclockRed.consumes_lifetime());
        assert!(!Domain::OverclockGreen.consumes_lifetime());
    }

    #[test]
    fn boundaries_are_inclusive_on_the_left_band() {
        let d = OperatingDomains::skylake_2pic_hfe();
        assert_eq!(d.classify(d.base()), Domain::Guaranteed);
        assert_eq!(d.classify(d.turbo()), Domain::Turbo);
        assert_eq!(d.classify(d.green_top()), Domain::OverclockGreen);
        assert_eq!(d.classify(d.ceiling()), Domain::OverclockRed);
    }

    #[test]
    fn bins_between_enumerates_the_autoscaler_range() {
        let d = OperatingDomains::skylake_2pic_hfe();
        let bins = d.bins_between(Frequency::from_ghz(3.4), Frequency::from_ghz(4.1));
        assert_eq!(bins.len(), 8); // 3.4, 3.5, ..., 4.1
        assert_eq!(bins[0], Frequency::from_ghz(3.4));
        assert_eq!(*bins.last().unwrap(), Frequency::from_ghz(4.1));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn disordered_boundaries_panic() {
        let _ = OperatingDomains::new(
            Frequency::from_ghz(3.0),
            Frequency::from_ghz(2.0),
            Frequency::from_ghz(3.4),
            Frequency::from_ghz(4.0),
            Frequency::from_ghz(4.5),
        );
    }
}
