//! Fleet-wide wear management: rotating overclock duty.
//!
//! Section IV closes with the paper's direction of "wear-out counters
//! ... that can be used to trade-off between overclocking and lifetime".
//! At fleet scale the interesting policy question is *which* servers
//! should carry overclock duty: always the same ones (burning their
//! credit) or rotated so wear equalizes. [`WearLedger`] tracks
//! per-server wear and implements least-worn-first duty assignment.

use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::wear::WearTracker;
use serde::{Deserialize, Serialize};

/// Per-server wear bookkeeping for a fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearLedger {
    trackers: Vec<WearTracker>,
}

/// A duty assignment: which servers overclock this epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DutyAssignment {
    /// Indexes of servers assigned overclock duty, least-worn first.
    pub overclocked: Vec<usize>,
}

impl WearLedger {
    /// Creates a ledger for `servers` identical parts with the given
    /// service-life target.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero or the target is not positive.
    pub fn new(servers: usize, service_target_years: f64) -> Self {
        assert!(servers > 0, "a fleet needs servers");
        WearLedger {
            trackers: vec![WearTracker::new(service_target_years); servers],
        }
    }

    /// The number of servers tracked.
    pub fn len(&self) -> usize {
        self.trackers.len()
    }

    /// `true` if the ledger tracks no servers (never for a constructed
    /// ledger; API completeness).
    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// One server's consumed-lifetime fraction.
    pub fn consumed(&self, server: usize) -> f64 {
        self.trackers[server].consumed_fraction()
    }

    /// The spread between the most- and least-worn servers.
    pub fn wear_spread(&self) -> f64 {
        let max = self
            .trackers
            .iter()
            .map(|t| t.consumed_fraction())
            .fold(f64::MIN, f64::max);
        let min = self
            .trackers
            .iter()
            .map(|t| t.consumed_fraction())
            .fold(f64::MAX, f64::min);
        max - min
    }

    /// Picks `count` servers for overclock duty, least-worn first
    /// (ties broken by index for determinism).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the fleet size.
    pub fn assign_duty(&self, count: usize) -> DutyAssignment {
        assert!(count <= self.trackers.len(), "not enough servers");
        let mut order: Vec<usize> = (0..self.trackers.len()).collect();
        order.sort_by(|&a, &b| {
            self.trackers[a]
                .consumed_fraction()
                .partial_cmp(&self.trackers[b].consumed_fraction())
                .expect("finite wear")
                .then(a.cmp(&b))
        });
        DutyAssignment {
            overclocked: order.into_iter().take(count).collect(),
        }
    }

    /// Records one epoch: servers in `duty` ran at `oc_conditions`, the
    /// rest at `nominal_conditions`, for `epoch_years`, at the given
    /// utilization.
    pub fn record_epoch(
        &mut self,
        model: &CompositeLifetimeModel,
        duty: &DutyAssignment,
        oc_conditions: &OperatingConditions,
        nominal_conditions: &OperatingConditions,
        epoch_years: f64,
        utilization: f64,
    ) {
        for (i, tracker) in self.trackers.iter_mut().enumerate() {
            let cond = if duty.overclocked.contains(&i) {
                oc_conditions
            } else {
                nominal_conditions
            };
            tracker.accrue_with_utilization(model, cond, epoch_years, utilization);
        }
    }

    /// The number of servers that would fail their service-life target
    /// if the rest of their life ran at `rest_conditions`.
    pub fn at_risk(
        &self,
        model: &CompositeLifetimeModel,
        rest_conditions: &OperatingConditions,
    ) -> usize {
        self.trackers
            .iter()
            .filter(|t| {
                let target = t.service_target_years();
                let remaining_time = (target - t.elapsed_years()).max(0.0);
                t.consumed_fraction() + remaining_time / model.lifetime_years(rest_conditions) > 1.0
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CompositeLifetimeModel {
        CompositeLifetimeModel::fitted_5nm()
    }
    fn oc() -> OperatingConditions {
        OperatingConditions::new(0.98, 60.0, 35.0) // HFE OC: ~5 y life
    }
    fn nominal() -> OperatingConditions {
        OperatingConditions::new(0.90, 51.0, 35.0) // ~18 y life
    }

    #[test]
    fn rotation_equalizes_wear() {
        let m = model();
        // Fleet of 8, 2 servers on duty per quarter, rotated.
        let mut rotated = WearLedger::new(8, 5.0);
        let mut pinned = WearLedger::new(8, 5.0);
        let pinned_duty = DutyAssignment {
            overclocked: vec![0, 1],
        };
        for _ in 0..16 {
            let duty = rotated.assign_duty(2);
            rotated.record_epoch(&m, &duty, &oc(), &nominal(), 0.25, 0.8);
            pinned.record_epoch(&m, &pinned_duty, &oc(), &nominal(), 0.25, 0.8);
        }
        assert!(
            rotated.wear_spread() < pinned.wear_spread() / 3.0,
            "rotated spread {} vs pinned {}",
            rotated.wear_spread(),
            pinned.wear_spread()
        );
    }

    #[test]
    fn pinned_duty_puts_servers_at_risk_sooner() {
        let m = model();
        let mut pinned = WearLedger::new(8, 5.0);
        let duty = DutyAssignment {
            overclocked: vec![0, 1],
        };
        // Three years of constant duty at full utilization.
        for _ in 0..12 {
            pinned.record_epoch(&m, &duty, &oc(), &nominal(), 0.25, 1.0);
        }
        // Servers 0/1 consumed ~3/5 of life in 3 of 5 years — on pace,
        // but any further OC risks the target; undutied servers are far
        // ahead of schedule.
        assert!(pinned.consumed(0) > 0.5);
        assert!(pinned.consumed(2) < 0.2);
        assert_eq!(pinned.at_risk(&m, &nominal()), 0);
        // Two more years of *hotter* duty (FC-3284 OC: ~4-year life)
        // pushes the pinned pair past the budget.
        let mut worn = pinned.clone();
        let hot = OperatingConditions::new(0.98, 74.0, 50.0);
        for _ in 0..8 {
            worn.record_epoch(&m, &duty, &hot, &nominal(), 0.25, 1.0);
        }
        assert!(worn.at_risk(&m, &nominal()) >= 2);
    }

    #[test]
    fn duty_picks_least_worn() {
        let m = model();
        let mut ledger = WearLedger::new(4, 5.0);
        // Wear server 0 heavily.
        ledger.record_epoch(
            &m,
            &DutyAssignment {
                overclocked: vec![0],
            },
            &OperatingConditions::new(0.98, 101.0, 20.0),
            &nominal(),
            1.0,
            1.0,
        );
        let duty = ledger.assign_duty(2);
        assert!(!duty.overclocked.contains(&0), "{duty:?}");
    }

    #[test]
    fn assignment_is_deterministic() {
        let ledger = WearLedger::new(5, 5.0);
        assert_eq!(ledger.assign_duty(3).overclocked, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not enough servers")]
    fn overcommitted_duty_panics() {
        WearLedger::new(2, 5.0).assign_duty(3);
    }
}
