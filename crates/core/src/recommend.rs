//! From telemetry to a concrete frequency configuration.
//!
//! The governor answers "how fast may this socket run"; bottleneck
//! analysis answers "which component is worth speeding up". This module
//! closes the loop the paper sketches in Section V: given a VM's
//! counter telemetry, recommend one of the Table VII-style
//! configurations — core-only (OC1-like), core+uncore (OC2-like),
//! everything (OC3-like), or nothing — together with the predicted
//! payoff and the power cost of the choice.

use crate::bottleneck::{analyze, BottleneckAnalysis, BottleneckThresholds, OverclockTarget};
use ic_telemetry::counters::CounterDelta;
use ic_workloads::configs::CpuConfig;
use ic_workloads::perfmodel::ServerPowerModel;
use serde::Serialize;

/// A concrete recommendation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Recommendation {
    /// The Table VII configuration to apply (B2 when overclocking is
    /// not worth its power).
    pub config: CpuConfig,
    /// The underlying bottleneck analysis.
    pub analysis: BottleneckAnalysis,
    /// Predicted speedup for the observed workload, as a fraction
    /// (0.15 = 15 % faster), from Equation 1 applied per component.
    pub predicted_speedup: f64,
    /// The additional average server power the configuration costs
    /// versus B2, watts (for the observed active-core count).
    pub extra_power_w: f64,
}

/// Maps a counter interval to a configuration recommendation.
///
/// A configuration is only recommended if its predicted speedup clears
/// `min_speedup` (the paper's warning: "providers must be careful to
/// increase frequencies for only the bottleneck components, to avoid
/// unnecessary power overheads").
///
/// # Panics
///
/// Panics if `active_cores > 28` (the tank-1 host) or `min_speedup` is
/// negative.
pub fn recommend(delta: &CounterDelta, active_cores: u32, min_speedup: f64) -> Recommendation {
    assert!(min_speedup >= 0.0, "invalid speedup threshold");
    let analysis = analyze(delta, BottleneckThresholds::default());
    let b2 = CpuConfig::b2();
    let candidate = match analysis.target {
        OverclockTarget::None => b2.clone(),
        OverclockTarget::Core => CpuConfig::oc1(),
        OverclockTarget::CoreAndUncore => CpuConfig::oc2(),
        OverclockTarget::Memory => CpuConfig::oc3(),
    };

    // Predicted speedup from the counters: the productive share scales
    // with the core clock; the stalled share scales with the uncore/
    // memory clocks when the candidate raises them (we attribute stall
    // time evenly across whichever of LLC/memory the config boosts).
    let p = analysis.productivity;
    let core_gain = p * (1.0 - 1.0 / candidate.core_ratio_to(&b2));
    let stall = 1.0 - p;
    let llc_ratio = candidate.llc_ratio_to(&b2);
    let mem_ratio = candidate.memory_ratio_to(&b2);
    let boosted: Vec<f64> = [llc_ratio, mem_ratio]
        .into_iter()
        .filter(|r| *r > 1.0)
        .collect();
    let stall_gain: f64 = if boosted.is_empty() {
        0.0
    } else {
        let share = stall / boosted.len() as f64;
        boosted.iter().map(|r| share * (1.0 - 1.0 / r)).sum()
    };
    let predicted_speedup = core_gain + stall_gain;

    let power = ServerPowerModel::tank1();
    let cores = active_cores.min(28);
    let (config, predicted_speedup, extra_power_w) =
        if predicted_speedup >= min_speedup && analysis.target != OverclockTarget::None {
            let extra = power.avg_power_w(&candidate, cores) - power.avg_power_w(&b2, cores);
            (candidate, predicted_speedup, extra)
        } else {
            (b2, 0.0, 0.0)
        };
    Recommendation {
        config,
        analysis,
        predicted_speedup,
        extra_power_w,
    }
}

/// A GPU configuration recommendation (Figure 11's lesson applied).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuRecommendation {
    /// The Table VIII configuration to apply.
    pub config: ic_workloads::gpu::GpuConfig,
    /// Predicted training-time reduction, as a fraction.
    pub predicted_speedup: f64,
    /// Extra P99 board power versus the 250 W base, watts.
    pub extra_power_w: f64,
}

/// Picks the cheapest Table VIII GPU configuration whose *incremental*
/// step still pays: OCG1 (core, free within 250 W) is taken whenever it
/// clears `min_speedup`; the 300 W memory overclocks (OCG2/OCG3) are
/// only taken when the memory step itself clears `min_step` — exactly
/// the discipline the paper derives from VGG16B, where OCG2/OCG3 add
/// 9.5 % P99 power "while offering little to no performance
/// improvement".
pub fn recommend_gpu(
    model: &ic_workloads::gpu::VggModel,
    min_speedup: f64,
    min_step: f64,
) -> GpuRecommendation {
    use ic_workloads::gpu::{GpuConfig, GpuPowerModel};
    let base = GpuConfig::base();
    let power = GpuPowerModel::rtx2080ti();
    let time = |cfg: &GpuConfig| model.normalized_time(cfg);

    let mut chosen = base.clone();
    let ocg1_gain = 1.0 - time(&GpuConfig::ocg1());
    if ocg1_gain >= min_speedup {
        chosen = GpuConfig::ocg1();
        let ocg2_step = time(&GpuConfig::ocg1()) - time(&GpuConfig::ocg2());
        if ocg2_step >= min_step {
            chosen = GpuConfig::ocg2();
            let ocg3_step = time(&GpuConfig::ocg2()) - time(&GpuConfig::ocg3());
            if ocg3_step >= min_step {
                chosen = GpuConfig::ocg3();
            }
        }
    }
    GpuRecommendation {
        predicted_speedup: 1.0 - time(&chosen),
        extra_power_w: power.p99_power_w(&chosen) - power.p99_power_w(&base),
        config: chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_telemetry::counters::CoreCounters;

    fn delta(stall: f64, busy: f64) -> CounterDelta {
        let mut c = CoreCounters::new();
        let t0 = c.sample(0.0);
        c.advance(busy, 3.4e9, stall);
        c.sample(1.0).since(&t0)
    }

    #[test]
    fn compute_bound_gets_core_only() {
        let r = recommend(&delta(0.05, 0.9), 4, 0.05);
        assert_eq!(r.config.name(), "OC1");
        assert!(r.predicted_speedup > 0.14, "{}", r.predicted_speedup);
        assert!(r.extra_power_w > 0.0);
    }

    #[test]
    fn memory_bound_gets_the_full_stack() {
        let r = recommend(&delta(0.6, 0.9), 4, 0.05);
        assert_eq!(r.config.name(), "OC3");
        // Stall relief dominates the prediction.
        assert!(r.predicted_speedup > 0.08);
    }

    #[test]
    fn mixed_gets_core_and_uncore() {
        let r = recommend(&delta(0.35, 0.9), 4, 0.05);
        assert_eq!(r.config.name(), "OC2");
    }

    #[test]
    fn idle_vm_stays_at_baseline() {
        let r = recommend(&delta(0.0, 0.05), 4, 0.0);
        assert_eq!(r.config.name(), "B2");
        assert_eq!(r.extra_power_w, 0.0);
    }

    #[test]
    fn high_bar_rejects_marginal_overclocks() {
        // A heavily stalled workload gains little from the core; with a
        // high minimum-speedup bar the recommendation falls back to B2.
        let r = recommend(&delta(0.9, 0.9), 4, 0.25);
        assert_eq!(r.config.name(), "B2");
        assert_eq!(r.predicted_speedup, 0.0);
    }

    #[test]
    fn power_cost_scales_with_configuration() {
        let oc1 = recommend(&delta(0.05, 0.9), 8, 0.0);
        let oc3 = recommend(&delta(0.6, 0.9), 8, 0.0);
        assert!(
            oc3.extra_power_w > oc1.extra_power_w,
            "memory OC costs more"
        );
    }

    #[test]
    fn gpu_batch_optimized_model_stops_at_ocg1() {
        use ic_workloads::gpu::VggModel;
        let r = recommend_gpu(&VggModel::by_name("VGG16B").unwrap(), 0.05, 0.01);
        assert_eq!(r.config.name(), "OCG1");
        // OCG1 keeps the 250 W power limit: no extra P99 power.
        assert_eq!(r.extra_power_w, 0.0);
        assert!(r.predicted_speedup > 0.10);
    }

    #[test]
    fn gpu_memory_hungry_model_takes_the_memory_overclock() {
        use ic_workloads::gpu::VggModel;
        let r = recommend_gpu(&VggModel::by_name("VGG11").unwrap(), 0.05, 0.01);
        assert!(
            r.config.name() == "OCG2" || r.config.name() == "OCG3",
            "{}",
            r.config.name()
        );
        assert!(r.extra_power_w > 30.0, "300 W limit costs P99 power");
    }

    #[test]
    fn gpu_high_bar_keeps_the_base_config() {
        use ic_workloads::gpu::VggModel;
        let r = recommend_gpu(&VggModel::by_name("VGG16B").unwrap(), 0.5, 0.01);
        assert_eq!(r.config.name(), "Base");
        assert_eq!(r.predicted_speedup, 0.0);
    }
}
