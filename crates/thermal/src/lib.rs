//! Thermal models for datacenter cooling, reproducing Section II–III of
//! "Cost-Efficient Overclocking in Immersion-Cooled Datacenters"
//! (ISCA 2021).
//!
//! The paper compares air-based cooling (chillers, water-side economizers,
//! direct evaporative), cold plates, and single-/two-phase immersion
//! cooling (1PIC/2PIC), then builds three 2PIC tank prototypes. The
//! physical apparatus reduces, for every downstream decision the paper
//! makes, to a handful of quantities: datacenter PUE, server fan overhead,
//! maximum heat removal, and the junction temperature reached at a given
//! power draw. This crate models exactly those quantities:
//!
//! * [`fluid`] — engineered dielectric fluids (Table II),
//! * [`technology`] — the cooling-technology catalog (Table I),
//! * [`junction`] — the lumped thermal-resistance junction model used to
//!   reproduce Table III and the temperature inputs of the lifetime model,
//! * [`tank`] — the three tank prototypes of Section III,
//! * [`environment`] — WUE and vapor-loss accounting (Takeaway 4).
//!
//! # Example
//!
//! ```
//! use ic_thermal::junction::ThermalInterface;
//! use ic_thermal::fluid::DielectricFluid;
//!
//! // The 28-core Skylake 8180 immersed with BEC on the IHS (Table III).
//! let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
//! let tj = iface.junction_temp_c(204.4);
//! assert!((tj - 68.0).abs() < 0.5);
//! ```

pub mod environment;
pub mod fluid;
pub mod junction;
pub mod tank;
pub mod technology;
pub mod transient;

pub use fluid::DielectricFluid;
pub use junction::ThermalInterface;
pub use tank::TankPrototype;
pub use technology::CoolingTechnology;
