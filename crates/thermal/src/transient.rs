//! Transient thermal behaviour: why immersion's junction-temperature
//! *swing* is so narrow.
//!
//! Table V's lifetime story hinges on ΔT_j: the air-cooled part cycles
//! 20–101 °C while the immersed one cycles 50–74 °C. The physical
//! reason is thermal mass and the boiling clamp: a 2PIC tank's bulk
//! liquid sits pinned at the fluid's boiling point no matter the load
//! (heat leaves as latent heat, not sensible heat), while an air-cooled
//! heatsink's reference temperature rides up and down with every load
//! change. [`ThermalNode`] is a first-order lumped RC model of a
//! junction over either reference; stepping a load profile through both
//! shows the swing difference directly.

use crate::fluid::DielectricFluid;
use serde::{Deserialize, Serialize};

/// A first-order thermal node: `C·dT/dt = P − (T − T_ref)/R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalNode {
    /// Thermal resistance junction→reference, °C/W.
    resistance_c_per_w: f64,
    /// Thermal capacitance, J/°C.
    capacitance_j_per_c: f64,
    /// Current junction temperature, °C.
    temp_c: f64,
    /// Reference (coolant) temperature, °C.
    reference_c: f64,
}

impl ThermalNode {
    /// Creates a node at thermal equilibrium with its reference.
    ///
    /// # Panics
    ///
    /// Panics if resistance or capacitance is not strictly positive.
    pub fn new(resistance_c_per_w: f64, capacitance_j_per_c: f64, reference_c: f64) -> Self {
        assert!(resistance_c_per_w > 0.0, "invalid resistance");
        assert!(capacitance_j_per_c > 0.0, "invalid capacitance");
        ThermalNode {
            resistance_c_per_w,
            capacitance_j_per_c,
            temp_c: reference_c,
            reference_c,
        }
    }

    /// An immersed junction: the reference is clamped at the fluid's
    /// boiling point; the die+boiler stack has small thermal mass
    /// (~60 J/°C for a lidded server CPU with a copper boiler).
    pub fn immersed(fluid: &DielectricFluid, resistance_c_per_w: f64) -> Self {
        ThermalNode::new(resistance_c_per_w, 60.0, fluid.boiling_point_c())
    }

    /// An air-cooled junction: larger heatsink mass, but the reference
    /// itself will be moved by [`Self::set_reference`] as load heats the
    /// airstream.
    pub fn air_cooled(resistance_c_per_w: f64, inlet_c: f64) -> Self {
        ThermalNode::new(resistance_c_per_w, 450.0, inlet_c)
    }

    /// Current junction temperature, °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Current reference temperature, °C.
    pub fn reference_c(&self) -> f64 {
        self.reference_c
    }

    /// The node's time constant `τ = R·C`, seconds.
    pub fn time_constant_s(&self) -> f64 {
        self.resistance_c_per_w * self.capacitance_j_per_c
    }

    /// Moves the reference temperature (airstream heating under load;
    /// never used for 2PIC, whose reference is the boiling clamp).
    pub fn set_reference(&mut self, reference_c: f64) {
        self.reference_c = reference_c;
    }

    /// Advances the node by `dt_s` seconds at dissipation `power_w`
    /// (exact exponential update of the first-order ODE). Returns the
    /// new junction temperature.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` or `power_w` is negative/non-finite.
    pub fn step(&mut self, power_w: f64, dt_s: f64) -> f64 {
        assert!(dt_s >= 0.0 && dt_s.is_finite(), "invalid dt");
        assert!(power_w >= 0.0 && power_w.is_finite(), "invalid power");
        let steady = self.reference_c + self.resistance_c_per_w * power_w;
        let alpha = (-dt_s / self.time_constant_s()).exp();
        self.temp_c = steady + (self.temp_c - steady) * alpha;
        self.temp_c
    }

    /// Runs a `(duration_s, power_w)` load profile and returns
    /// `(min, max)` junction temperature seen (sampled every second).
    pub fn run_profile(&mut self, profile: &[(f64, f64)]) -> (f64, f64) {
        let mut min = self.temp_c;
        let mut max = self.temp_c;
        for &(duration_s, power_w) in profile {
            let steps = duration_s.ceil() as usize;
            for _ in 0..steps.max(1) {
                let t = self.step(power_w, (duration_s / steps.max(1) as f64).max(1e-9));
                min = min.min(t);
                max = max.max(t);
            }
        }
        (min, max)
    }
}

/// Runs the same idle/burst load profile through an air-cooled and an
/// immersed junction and returns their `(ΔT_air, ΔT_2pic)` swings —
/// the Table V "DTj" comparison from first principles. For the air
/// node, the airstream reference is modelled as rising 0.05 °C/W with
/// sustained load (shared hot aisle).
pub fn swing_comparison(
    fluid: &DielectricFluid,
    idle_w: f64,
    peak_w: f64,
    cycle_s: f64,
    cycles: u32,
) -> (f64, f64) {
    let mut air = ThermalNode::air_cooled(0.16, 20.0);
    let mut tank = ThermalNode::immersed(fluid, 0.0785);
    let mut air_min = f64::MAX;
    let mut air_max = f64::MIN;
    let mut tank_min = f64::MAX;
    let mut tank_max = f64::MIN;
    for _ in 0..cycles {
        for &(p, frac) in &[(peak_w, 0.5), (idle_w, 0.5)] {
            // Air reference rides with the load; the tank's stays at the
            // boiling point.
            air.set_reference(20.0 + 0.05 * p);
            let (lo_a, hi_a) = air.run_profile(&[(cycle_s * frac, p)]);
            let (lo_t, hi_t) = tank.run_profile(&[(cycle_s * frac, p)]);
            air_min = air_min.min(lo_a);
            air_max = air_max.max(hi_a);
            tank_min = tank_min.min(lo_t);
            tank_max = tank_max.max(hi_t);
        }
    }
    (air_max - air_min, tank_max - tank_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_settles_to_steady_state() {
        let mut n = ThermalNode::new(0.1, 100.0, 50.0);
        n.step(200.0, 1000.0); // many time constants
        assert!((n.temp_c() - 70.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_approach_with_correct_time_constant() {
        let mut n = ThermalNode::new(0.1, 100.0, 50.0);
        // One time constant (10 s): 63.2 % of the way to steady state.
        n.step(200.0, n.time_constant_s());
        let progress = (n.temp_c() - 50.0) / 20.0;
        assert!((progress - 0.632).abs() < 0.002, "progress {progress}");
    }

    #[test]
    fn immersed_node_has_short_time_constant() {
        let tank = ThermalNode::immersed(&DielectricFluid::fc3284(), 0.0785);
        let air = ThermalNode::air_cooled(0.16, 20.0);
        assert!(tank.time_constant_s() < air.time_constant_s() / 5.0);
    }

    #[test]
    fn swing_comparison_matches_table5_shape() {
        // Idle 5 W / peak 305 W cycles: air swings far wider than 2PIC.
        let (air_swing, tank_swing) =
            swing_comparison(&DielectricFluid::fc3284(), 5.0, 305.0, 1200.0, 4);
        assert!(
            air_swing > 2.0 * tank_swing,
            "air {air_swing:.1} vs tank {tank_swing:.1}"
        );
        // Table V magnitudes: air ~81 °C (20–101), FC-3284 ~24 °C.
        assert!(
            (60.0..100.0).contains(&air_swing),
            "air swing {air_swing:.1}"
        );
        assert!(
            (15.0..35.0).contains(&tank_swing),
            "tank swing {tank_swing:.1}"
        );
    }

    #[test]
    fn tank_temperature_never_drops_below_boiling_point() {
        let fluid = DielectricFluid::hfe7000();
        let mut tank = ThermalNode::immersed(&fluid, 0.084);
        tank.run_profile(&[(600.0, 300.0), (600.0, 0.0)]);
        assert!(tank.temp_c() >= fluid.boiling_point_c() - 1e-9);
    }

    #[test]
    fn profile_reports_extremes() {
        let mut n = ThermalNode::new(0.1, 10.0, 40.0);
        let (lo, hi) = n.run_profile(&[(100.0, 300.0), (100.0, 0.0)]);
        assert!((hi - 70.0).abs() < 0.5);
        assert!((lo - 40.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid capacitance")]
    fn zero_capacitance_panics() {
        let _ = ThermalNode::new(0.1, 0.0, 40.0);
    }
}
