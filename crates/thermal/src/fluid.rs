//! Engineered dielectric fluids for immersion cooling (paper Table II).
//!
//! Fluorinated fluids are designed to boil at specific temperatures, are
//! non-conductive and chemically inert, and have a useful life beyond 30
//! years. The paper uses 3M FC-3284 (Fluorinert) in small tank #2 and the
//! large tank, and 3M HFE-7000 (Novec 7000) in small tank #1.

use ic_scenario::{FluidSpec, ThermalCalibration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dielectric fluid engineered for immersion cooling.
///
/// # Example
///
/// ```
/// use ic_thermal::fluid::DielectricFluid;
///
/// let fc = DielectricFluid::fc3284();
/// assert_eq!(fc.boiling_point_c(), 50.0);
/// // Boiling off 1 kg of FC-3284 absorbs 105 kJ.
/// assert_eq!(fc.heat_absorbed_kj(1.0), 105.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DielectricFluid {
    name: String,
    boiling_point_c: f64,
    dielectric_constant: f64,
    latent_heat_j_per_g: f64,
    useful_life_years: f64,
    /// Global-warming potential class; both paper fluids are high-GWP,
    /// which motivates the vapor management in [`crate::environment`].
    high_gwp: bool,
}

impl DielectricFluid {
    /// Builds a fluid from a scenario specification.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DielectricFluid::custom`];
    /// a spec from a validated [`ic_scenario::Scenario`] never does.
    pub fn from_spec(spec: &FluidSpec) -> Self {
        Self::custom(
            spec.name.clone(),
            spec.boiling_point_c,
            spec.dielectric_constant,
            spec.latent_heat_j_per_g,
            spec.useful_life_years,
            spec.high_gwp,
        )
    }

    fn paper_fluid(name: &str) -> Self {
        Self::from_spec(
            ThermalCalibration::paper()
                .fluid(name)
                .expect("paper calibration fluid"),
        )
    }

    /// 3M Fluorinert FC-3284: boils at 50 °C, latent heat 105 J/g
    /// (Table II). Used in small tank #2 and the 36-blade large tank.
    pub fn fc3284() -> Self {
        Self::paper_fluid("3M FC-3284")
    }

    /// 3M Novec HFE-7000: boils at 34 °C, latent heat 142 J/g (Table II).
    /// Used in small tank #1 with the overclockable Xeon W-3175X; its lower
    /// boiling point yields the lowest junction temperatures, which is what
    /// lets overclocked lifetime match the air-cooled baseline (Table V).
    pub fn hfe7000() -> Self {
        Self::paper_fluid("3M HFE-7000")
    }

    /// Creates a custom fluid, e.g. to explore the lower-GWP alternatives
    /// the paper mentions but had not yet tested.
    ///
    /// # Panics
    ///
    /// Panics if the boiling point is outside a plausible (0, 100] °C
    /// range, or if the latent heat or useful life are not positive.
    pub fn custom(
        name: impl Into<String>,
        boiling_point_c: f64,
        dielectric_constant: f64,
        latent_heat_j_per_g: f64,
        useful_life_years: f64,
        high_gwp: bool,
    ) -> Self {
        assert!(
            boiling_point_c > 0.0 && boiling_point_c <= 100.0,
            "implausible boiling point {boiling_point_c} °C"
        );
        assert!(latent_heat_j_per_g > 0.0, "latent heat must be positive");
        assert!(useful_life_years > 0.0, "useful life must be positive");
        DielectricFluid {
            name: name.into(),
            boiling_point_c,
            dielectric_constant,
            latent_heat_j_per_g,
            useful_life_years,
            high_gwp,
        }
    }

    /// The fluid's marketing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boiling point in °C — the bulk liquid temperature of a 2PIC
    /// tank in steady state, and therefore the reference temperature of
    /// the junction model.
    pub fn boiling_point_c(&self) -> f64 {
        self.boiling_point_c
    }

    /// The relative dielectric constant.
    pub fn dielectric_constant(&self) -> f64 {
        self.dielectric_constant
    }

    /// The latent heat of vaporization in J/g.
    pub fn latent_heat_j_per_g(&self) -> f64 {
        self.latent_heat_j_per_g
    }

    /// The engineered useful life in years (">30 years" in Table II).
    pub fn useful_life_years(&self) -> f64 {
        self.useful_life_years
    }

    /// `true` if the fluid has high global-warming potential and therefore
    /// requires vapor management (Takeaway 4).
    pub fn is_high_gwp(&self) -> bool {
        self.high_gwp
    }

    /// Heat absorbed, in kJ, by boiling off `mass_kg` of fluid.
    ///
    /// # Panics
    ///
    /// Panics if `mass_kg` is negative or non-finite.
    pub fn heat_absorbed_kj(&self, mass_kg: f64) -> f64 {
        assert!(mass_kg.is_finite() && mass_kg >= 0.0, "invalid mass");
        // J/g == kJ/kg.
        self.latent_heat_j_per_g * mass_kg
    }

    /// The mass of fluid, in kg, boiled per second to remove `heat_w`
    /// watts — the vapor generation rate the condenser must keep up with.
    ///
    /// # Panics
    ///
    /// Panics if `heat_w` is negative or non-finite.
    pub fn boil_rate_kg_per_s(&self, heat_w: f64) -> f64 {
        assert!(heat_w.is_finite() && heat_w >= 0.0, "invalid heat load");
        heat_w / (self.latent_heat_j_per_g * 1000.0)
    }
}

impl fmt::Display for DielectricFluid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (boils at {} °C)", self.name, self.boiling_point_c)
    }
}

/// Boiling-enhancing coating (BEC), required for surfaces with heat flux
/// above 10 W/cm² (Section II). The paper uses 3M L-20227, which improves
/// boiling performance 2× over uncoated smooth surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoilingCoating {
    /// No coating: smooth surface.
    None,
    /// 3M L-20227 microporous metallic coating (2× boiling performance).
    L20227,
}

impl BoilingCoating {
    /// The multiplier on boiling heat-transfer performance relative to an
    /// uncoated surface. Thermal resistance scales with its inverse.
    pub fn performance_factor(self) -> f64 {
        match self {
            BoilingCoating::None => 1.0,
            BoilingCoating::L20227 => 2.0,
        }
    }

    /// The heat-flux threshold above which a coating is required, W/cm²
    /// (Section II).
    pub const REQUIRED_ABOVE_W_PER_CM2: f64 = 10.0;

    /// Whether a bare surface with the given heat flux needs a coating.
    pub fn required_for_flux(flux_w_per_cm2: f64) -> bool {
        flux_w_per_cm2 > Self::REQUIRED_ABOVE_W_PER_CM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_fc3284() {
        let f = DielectricFluid::fc3284();
        assert_eq!(f.boiling_point_c(), 50.0);
        assert_eq!(f.dielectric_constant(), 1.86);
        assert_eq!(f.latent_heat_j_per_g(), 105.0);
        assert!(f.useful_life_years() >= 30.0);
        assert!(f.is_high_gwp());
    }

    #[test]
    fn table2_hfe7000() {
        let f = DielectricFluid::hfe7000();
        assert_eq!(f.boiling_point_c(), 34.0);
        assert_eq!(f.dielectric_constant(), 7.4);
        assert_eq!(f.latent_heat_j_per_g(), 142.0);
    }

    #[test]
    fn boil_rate_balances_heat() {
        let f = DielectricFluid::fc3284();
        // A 700 W server boils 700 / 105000 kg/s.
        let rate = f.boil_rate_kg_per_s(700.0);
        assert!((rate - 700.0 / 105_000.0).abs() < 1e-12);
        // Boiling that mass for one second absorbs exactly the heat.
        assert!((f.heat_absorbed_kj(rate) * 1000.0 - 700.0).abs() < 1e-9);
    }

    #[test]
    fn hfe_boils_less_mass_for_same_heat() {
        let fc = DielectricFluid::fc3284();
        let hfe = DielectricFluid::hfe7000();
        assert!(hfe.boil_rate_kg_per_s(1000.0) < fc.boil_rate_kg_per_s(1000.0));
    }

    #[test]
    fn custom_fluid_validates() {
        let f = DielectricFluid::custom("LowGWP-X", 45.0, 2.0, 120.0, 25.0, false);
        assert!(!f.is_high_gwp());
        assert_eq!(f.name(), "LowGWP-X");
    }

    #[test]
    #[should_panic(expected = "implausible boiling point")]
    fn custom_fluid_rejects_bad_boiling_point() {
        let _ = DielectricFluid::custom("X", 150.0, 2.0, 120.0, 25.0, false);
    }

    #[test]
    fn bec_doubles_performance() {
        assert_eq!(BoilingCoating::L20227.performance_factor(), 2.0);
        assert_eq!(BoilingCoating::None.performance_factor(), 1.0);
    }

    #[test]
    fn bec_required_above_threshold() {
        assert!(!BoilingCoating::required_for_flux(5.0));
        assert!(BoilingCoating::required_for_flux(25.0));
        // A 205 W Skylake over a ~5 cm² die is far above the threshold.
        assert!(BoilingCoating::required_for_flux(205.0 / 5.0));
    }

    #[test]
    fn display_mentions_boiling_point() {
        assert!(DielectricFluid::hfe7000().to_string().contains("34"));
    }
}
