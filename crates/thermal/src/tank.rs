//! The three 2PIC tank prototypes of Section III.
//!
//! * **Small tank #1** — one 28-core Xeon W-3175X (255 W TDP,
//!   overclockable) in HFE-7000; the platform for every CPU overclocking
//!   experiment in Section VI.
//! * **Small tank #2** — an 8-core i9-9900K plus an overclockable Nvidia
//!   RTX 2080 Ti (250 W TDP) in FC-3284; the GPU overclocking platform.
//! * **Large tank** — 36 Open Compute two-socket blades (half Skylake
//!   8168, half 8180, 205 W TDP each, locked) in FC-3284, used for thermal
//!   and reliability characterization and later deployed in production.

use crate::fluid::DielectricFluid;
use crate::junction::ThermalInterface;
use ic_scenario::{TankSpec, ThermalCalibration};
use serde::{Deserialize, Serialize};

/// A 2PIC tank hosting a fixed set of server slots.
///
/// # Example
///
/// ```
/// use ic_thermal::tank::TankPrototype;
///
/// let tank = TankPrototype::large();
/// assert_eq!(tank.server_slots(), 36);
/// // 36 servers × 658 W (immersed: no fans) is within condenser capacity.
/// assert!(tank.can_dissipate(36.0 * 658.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TankPrototype {
    name: String,
    fluid: DielectricFluid,
    server_slots: u32,
    condenser_capacity_w: f64,
    sealed: bool,
}

impl TankPrototype {
    /// Builds a tank from a scenario specification, resolving its fluid
    /// against the calibration's fluid list.
    ///
    /// # Panics
    ///
    /// Panics if the spec names a fluid absent from `cal`; a spec from a
    /// validated [`ic_scenario::Scenario`] never does.
    pub fn from_spec(spec: &TankSpec, cal: &ThermalCalibration) -> Self {
        let fluid = cal
            .fluid(&spec.fluid)
            .unwrap_or_else(|| panic!("tank {}: unknown fluid '{}'", spec.name, spec.fluid));
        TankPrototype {
            name: spec.name.clone(),
            fluid: DielectricFluid::from_spec(fluid),
            server_slots: spec.server_slots,
            condenser_capacity_w: spec.condenser_capacity_w,
            sealed: spec.sealed,
        }
    }

    fn paper_tank(index: usize) -> Self {
        let cal = ThermalCalibration::paper();
        Self::from_spec(&cal.tanks[index], &cal)
    }

    /// Small tank #1: Xeon W-3175X in HFE-7000, 2 server slots. The
    /// condenser capacity is generous single-server headroom: the
    /// W-3175X alone can pull >500 W when overclocked.
    pub fn small_tank_1() -> Self {
        Self::paper_tank(0)
    }

    /// Small tank #2: i9-9900K + RTX 2080 Ti in FC-3284, 2 server slots.
    pub fn small_tank_2() -> Self {
        Self::paper_tank(1)
    }

    /// The large tank: 36 Open Compute blades in FC-3284. Its condenser
    /// handles 36 × 700 W air-equivalent servers plus the paper's
    /// +200 W/server overclocking headroom (Section IV).
    pub fn large() -> Self {
        Self::paper_tank(2)
    }

    /// The tank's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The immersion fluid in this tank.
    pub fn fluid(&self) -> &DielectricFluid {
        &self.fluid
    }

    /// The number of server slots.
    pub fn server_slots(&self) -> u32 {
        self.server_slots
    }

    /// The condenser's maximum continuous heat rejection, in watts.
    pub fn condenser_capacity_w(&self) -> f64 {
        self.condenser_capacity_w
    }

    /// `true` if the tank is sealed against vapor loss (Takeaway 4).
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Whether the condenser can reject `heat_w` continuously.
    pub fn can_dissipate(&self, heat_w: f64) -> bool {
        heat_w <= self.condenser_capacity_w
    }

    /// The steady-state vapor generation rate, kg/s, at heat load
    /// `heat_w`. The condenser returns the same mass as liquid, so no
    /// fluid is lost while sealed.
    pub fn vapor_rate_kg_per_s(&self, heat_w: f64) -> f64 {
        self.fluid.boil_rate_kg_per_s(heat_w)
    }

    /// Builds a junction interface for a component immersed in this tank
    /// with the given boiling-side thermal resistance and superheat.
    pub fn interface(&self, resistance_c_per_w: f64, superheat_c: f64) -> ThermalInterface {
        ThermalInterface::two_phase(self.fluid.clone(), resistance_c_per_w, superheat_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_inventory() {
        assert_eq!(TankPrototype::small_tank_1().server_slots(), 2);
        assert_eq!(TankPrototype::small_tank_2().server_slots(), 2);
        assert_eq!(TankPrototype::large().server_slots(), 36);
    }

    #[test]
    fn fluids_match_section_3() {
        assert_eq!(TankPrototype::small_tank_1().fluid().name(), "3M HFE-7000");
        assert_eq!(TankPrototype::small_tank_2().fluid().name(), "3M FC-3284");
        assert_eq!(TankPrototype::large().fluid().name(), "3M FC-3284");
    }

    #[test]
    fn large_tank_handles_full_load_with_overclocking() {
        let tank = TankPrototype::large();
        // 36 servers at 700 W (air envelope) each.
        assert!(tank.can_dissipate(36.0 * 700.0));
        // Plus the paper's +200 W/server overclocking allowance.
        assert!(tank.can_dissipate(36.0 * 900.0));
        // But not unbounded.
        assert!(!tank.can_dissipate(36.0 * 1200.0));
    }

    #[test]
    fn vapor_rate_uses_fluid_latent_heat() {
        let tank = TankPrototype::large();
        let rate = tank.vapor_rate_kg_per_s(10_500.0);
        assert!((rate - 0.1).abs() < 1e-9); // 10.5 kW / 105 kJ/kg
    }

    #[test]
    fn interface_uses_tank_fluid() {
        let tank = TankPrototype::small_tank_1();
        let iface = tank.interface(0.084, 0.0);
        // HFE-7000 boils at 34 °C.
        assert_eq!(iface.reference_temp_c(), 34.0);
    }

    #[test]
    fn tanks_are_sealed() {
        assert!(TankPrototype::large().is_sealed());
    }
}
