//! The datacenter cooling-technology catalog (paper Table I).
//!
//! Each technology is characterized by the quantities the paper's TCO and
//! power analyses consume: average and peak PUE, the fraction of server
//! power spent on fans, and the maximum per-server heat removal.

use crate::fluid::DielectricFluid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A datacenter cooling technology with its published efficiency envelope.
///
/// # Example
///
/// ```
/// use ic_thermal::technology::CoolingTechnology;
///
/// let evap = CoolingTechnology::direct_evaporative();
/// let tpic = CoolingTechnology::immersion_2p(ic_thermal::DielectricFluid::fc3284());
/// // Switching from evaporative peak PUE 1.20 to 2PIC's 1.03 reclaims 14 %
/// // of total datacenter power (Section IV, "Power consumption").
/// let saved = evap.peak_pue_reduction_to(&tpic);
/// assert!((saved - 0.1417).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingTechnology {
    kind: CoolingKind,
    avg_pue: f64,
    peak_pue: f64,
    fan_overhead: f64,
    max_server_cooling_w: f64,
}

/// The family a [`CoolingTechnology`] belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoolingKind {
    /// Chiller-based closed-loop air cooling.
    Chiller,
    /// Water-side economized air cooling.
    WaterSide,
    /// Direct evaporative ("free") air cooling — the paper's air baseline.
    DirectEvaporative,
    /// Cold plates on the most power-hungry components.
    CpuColdPlate,
    /// Single-phase immersion cooling.
    Immersion1P(DielectricFluid),
    /// Two-phase immersion cooling — the paper's focus.
    Immersion2P(DielectricFluid),
}

impl CoolingTechnology {
    /// Chiller-based cooling: PUE 1.70 avg / 2.00 peak, 5 % fans, 700 W max.
    pub fn chiller() -> Self {
        CoolingTechnology {
            kind: CoolingKind::Chiller,
            avg_pue: 1.70,
            peak_pue: 2.00,
            fan_overhead: 0.05,
            max_server_cooling_w: 700.0,
        }
    }

    /// Water-side economized: PUE 1.19 avg / 1.25 peak, 6 % fans, 700 W max.
    pub fn water_side() -> Self {
        CoolingTechnology {
            kind: CoolingKind::WaterSide,
            avg_pue: 1.19,
            peak_pue: 1.25,
            fan_overhead: 0.06,
            max_server_cooling_w: 700.0,
        }
    }

    /// Direct evaporative: PUE 1.12 avg / 1.20 peak, 6 % fans, 700 W max.
    /// This is the air-cooled hyperscale baseline of the paper's TCO
    /// analysis.
    pub fn direct_evaporative() -> Self {
        CoolingTechnology {
            kind: CoolingKind::DirectEvaporative,
            avg_pue: 1.12,
            peak_pue: 1.20,
            fan_overhead: 0.06,
            max_server_cooling_w: 700.0,
        }
    }

    /// CPU cold plates: PUE 1.08 avg / 1.13 peak, 3 % fans, 2 kW max.
    pub fn cpu_cold_plate() -> Self {
        CoolingTechnology {
            kind: CoolingKind::CpuColdPlate,
            avg_pue: 1.08,
            peak_pue: 1.13,
            fan_overhead: 0.03,
            max_server_cooling_w: 2000.0,
        }
    }

    /// Single-phase immersion: PUE 1.05 avg / 1.07 peak, no fans, 2 kW max.
    pub fn immersion_1p(fluid: DielectricFluid) -> Self {
        CoolingTechnology {
            kind: CoolingKind::Immersion1P(fluid),
            avg_pue: 1.05,
            peak_pue: 1.07,
            fan_overhead: 0.0,
            max_server_cooling_w: 2000.0,
        }
    }

    /// Two-phase immersion: PUE 1.02 avg / 1.03 peak, no fans, >4 kW max.
    pub fn immersion_2p(fluid: DielectricFluid) -> Self {
        CoolingTechnology {
            kind: CoolingKind::Immersion2P(fluid),
            avg_pue: 1.02,
            peak_pue: 1.03,
            fan_overhead: 0.0,
            max_server_cooling_w: 4000.0,
        }
    }

    /// All six Table I technologies, in the table's row order, with 2PIC
    /// fluids defaulted to FC-3284.
    pub fn catalog() -> Vec<CoolingTechnology> {
        vec![
            Self::chiller(),
            Self::water_side(),
            Self::direct_evaporative(),
            Self::cpu_cold_plate(),
            Self::immersion_1p(DielectricFluid::fc3284()),
            Self::immersion_2p(DielectricFluid::fc3284()),
        ]
    }

    /// The technology family.
    pub fn kind(&self) -> &CoolingKind {
        &self.kind
    }

    /// A short human-readable name matching Table I's row labels.
    pub fn name(&self) -> &'static str {
        match self.kind {
            CoolingKind::Chiller => "Chillers",
            CoolingKind::WaterSide => "Water-side",
            CoolingKind::DirectEvaporative => "Direct evaporative",
            CoolingKind::CpuColdPlate => "CPU cold plates",
            CoolingKind::Immersion1P(_) => "1PIC",
            CoolingKind::Immersion2P(_) => "2PIC",
        }
    }

    /// Average PUE (total datacenter power / IT power).
    pub fn avg_pue(&self) -> f64 {
        self.avg_pue
    }

    /// Peak PUE, reached under worst-case environmental conditions; the
    /// quantity that sizes the power delivery infrastructure.
    pub fn peak_pue(&self) -> f64 {
        self.peak_pue
    }

    /// The fraction of server power consumed by fans under this technology.
    pub fn fan_overhead(&self) -> f64 {
        self.fan_overhead
    }

    /// Maximum per-server heat removal in watts.
    pub fn max_server_cooling_w(&self) -> f64 {
        self.max_server_cooling_w
    }

    /// `true` for 1PIC/2PIC, whose tanks remove heat without server fans.
    pub fn is_immersion(&self) -> bool {
        matches!(
            self.kind,
            CoolingKind::Immersion1P(_) | CoolingKind::Immersion2P(_)
        )
    }

    /// The immersion fluid, if this is an immersion technology.
    pub fn fluid(&self) -> Option<&DielectricFluid> {
        match &self.kind {
            CoolingKind::Immersion1P(f) | CoolingKind::Immersion2P(f) => Some(f),
            _ => None,
        }
    }

    /// Whether a server dissipating `power_w` can be cooled at all.
    pub fn can_cool(&self, power_w: f64) -> bool {
        power_w <= self.max_server_cooling_w
    }

    /// Total facility power for a given IT load at average PUE.
    ///
    /// # Panics
    ///
    /// Panics if `it_power_w` is negative or non-finite.
    pub fn facility_power_w(&self, it_power_w: f64) -> f64 {
        assert!(
            it_power_w.is_finite() && it_power_w >= 0.0,
            "invalid IT power {it_power_w}"
        );
        it_power_w * self.avg_pue
    }

    /// The fractional reduction in *total* datacenter power achieved by
    /// switching from `self` to `to`, at peak PUE. The paper computes
    /// 1 − 1.03/1.20 ≈ 14 % for evaporative → 2PIC, worth 118 W for a
    /// 700 W server (Section IV, "Power consumption").
    pub fn peak_pue_reduction_to(&self, to: &CoolingTechnology) -> f64 {
        1.0 - to.peak_pue / self.peak_pue
    }

    /// The per-server total-power saving, in watts, from switching
    /// technologies at peak PUE: `server_w × peak_pue × reduction`.
    pub fn peak_power_saving_w(&self, to: &CoolingTechnology, server_w: f64) -> f64 {
        server_w * self.peak_pue * self.peak_pue_reduction_to(to)
    }
}

impl fmt::Display for CoolingTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (PUE {:.2}/{:.2}, fans {:.0}%, max {:.0} W)",
            self.name(),
            self.avg_pue,
            self.peak_pue,
            self.fan_overhead * 100.0,
            self.max_server_cooling_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let rows = CoolingTechnology::catalog();
        let expect = [
            ("Chillers", 1.70, 2.00, 0.05, 700.0),
            ("Water-side", 1.19, 1.25, 0.06, 700.0),
            ("Direct evaporative", 1.12, 1.20, 0.06, 700.0),
            ("CPU cold plates", 1.08, 1.13, 0.03, 2000.0),
            ("1PIC", 1.05, 1.07, 0.0, 2000.0),
            ("2PIC", 1.02, 1.03, 0.0, 4000.0),
        ];
        for (row, (name, avg, peak, fan, max)) in rows.iter().zip(expect) {
            assert_eq!(row.name(), name);
            assert_eq!(row.avg_pue(), avg);
            assert_eq!(row.peak_pue(), peak);
            assert_eq!(row.fan_overhead(), fan);
            assert_eq!(row.max_server_cooling_w(), max);
        }
    }

    #[test]
    fn pue_ordering_improves_down_the_table() {
        let rows = CoolingTechnology::catalog();
        for pair in rows.windows(2) {
            assert!(pair[1].avg_pue() <= pair[0].avg_pue());
            assert!(pair[1].peak_pue() <= pair[0].peak_pue());
        }
    }

    #[test]
    fn paper_118w_pue_saving() {
        let evap = CoolingTechnology::direct_evaporative();
        let tpic = CoolingTechnology::immersion_2p(DielectricFluid::fc3284());
        // 700 × 1.20 × 14 % ≈ 118 W (Section IV).
        let saving = evap.peak_power_saving_w(&tpic, 700.0);
        assert!((saving - 118.0).abs() < 2.0, "saving = {saving}");
    }

    #[test]
    fn immersion_has_no_fans_and_knows_its_fluid() {
        let t = CoolingTechnology::immersion_2p(DielectricFluid::hfe7000());
        assert!(t.is_immersion());
        assert_eq!(t.fan_overhead(), 0.0);
        assert_eq!(t.fluid().unwrap().name(), "3M HFE-7000");
        assert!(CoolingTechnology::chiller().fluid().is_none());
    }

    #[test]
    fn cooling_capacity_gates() {
        let air = CoolingTechnology::direct_evaporative();
        let tpic = CoolingTechnology::immersion_2p(DielectricFluid::fc3284());
        // A 900 W overclocked server exceeds the air envelope but not 2PIC.
        assert!(!air.can_cool(900.0));
        assert!(tpic.can_cool(900.0));
    }

    #[test]
    fn facility_power_applies_avg_pue() {
        let t = CoolingTechnology::water_side();
        assert!((t.facility_power_w(1000.0) - 1190.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_key_numbers() {
        let s = CoolingTechnology::chiller().to_string();
        assert!(s.contains("1.70") && s.contains("2.00"));
    }
}
