//! The lumped junction-temperature model.
//!
//! The paper characterizes each (processor, cooling) pair by an effective
//! thermal resistance `R_th` (°C/W) between the junction and a reference
//! temperature — the thermal-chamber-supplied case environment for air,
//! or the fluid's boiling point (plus a small wall-superheat offset) for
//! 2PIC. Steady-state junction temperature is then
//!
//! ```text
//! T_j = T_ref + R_th × P
//! ```
//!
//! Table III gives measured `R_th` values: 0.22 / 0.21 °C/W in air and
//! 0.12 / 0.08 °C/W in FC-3284 for the Skylake 8168 / 8180; we calibrate
//! reference temperatures from the table's observed junction temperatures
//! and reuse the same structure for the Table V lifetime configurations.

use crate::fluid::{BoilingCoating, DielectricFluid};
use ic_scenario::{CoolingSpec, PlatformSpec, ThermalCalibration};
use serde::{Deserialize, Serialize};

/// A calibrated junction-to-coolant thermal interface.
///
/// # Example
///
/// ```
/// use ic_thermal::junction::ThermalInterface;
///
/// // The air-cooled Skylake 8168 baseline of Table III: R_th = 0.22 °C/W,
/// // observed T_j = 92 °C at 204.4 W in a 35 °C thermal chamber.
/// let air = ThermalInterface::air(35.0, 12.0, 0.22);
/// assert!((air.junction_temp_c(204.4) - 92.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalInterface {
    reference_temp_c: f64,
    resistance_c_per_w: f64,
    medium: CoolingMedium,
}

/// What the junction ultimately rejects heat into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoolingMedium {
    /// Forced air: reference is inlet temperature plus a case rise.
    Air,
    /// Two-phase immersion: reference is the fluid boiling point plus a
    /// wall-superheat offset.
    TwoPhase(DielectricFluid),
}

impl ThermalInterface {
    /// An air-cooled interface: `inlet_c` is the supplied air temperature
    /// (the paper's thermal chamber supplies 35 °C), `case_rise_c` the
    /// temperature rise from inlet to the heatsink base, and
    /// `resistance_c_per_w` the junction-to-case thermal resistance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive or temperatures are
    /// non-finite.
    pub fn air(inlet_c: f64, case_rise_c: f64, resistance_c_per_w: f64) -> Self {
        assert!(inlet_c.is_finite() && case_rise_c.is_finite());
        assert!(
            resistance_c_per_w > 0.0 && resistance_c_per_w.is_finite(),
            "invalid thermal resistance {resistance_c_per_w}"
        );
        ThermalInterface {
            reference_temp_c: inlet_c + case_rise_c,
            resistance_c_per_w,
            medium: CoolingMedium::Air,
        }
    }

    /// A 2PIC interface: the reference temperature is the fluid's boiling
    /// point plus `superheat_c` (the small wall superheat needed to sustain
    /// nucleate boiling).
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive or `superheat_c` is
    /// negative.
    pub fn two_phase(fluid: DielectricFluid, resistance_c_per_w: f64, superheat_c: f64) -> Self {
        assert!(
            resistance_c_per_w > 0.0 && resistance_c_per_w.is_finite(),
            "invalid thermal resistance {resistance_c_per_w}"
        );
        assert!(
            superheat_c >= 0.0 && superheat_c.is_finite(),
            "invalid superheat {superheat_c}"
        );
        ThermalInterface {
            reference_temp_c: fluid.boiling_point_c() + superheat_c,
            resistance_c_per_w,
            medium: CoolingMedium::TwoPhase(fluid),
        }
    }

    /// Applies a boiling-enhancing coating, which divides the boiling-side
    /// thermal resistance by the coating's performance factor. Only
    /// meaningful for two-phase interfaces; a no-op on air.
    pub fn with_coating(mut self, coating: BoilingCoating) -> Self {
        if matches!(self.medium, CoolingMedium::TwoPhase(_)) {
            self.resistance_c_per_w /= coating.performance_factor();
        }
        self
    }

    /// The effective reference temperature in °C.
    pub fn reference_temp_c(&self) -> f64 {
        self.reference_temp_c
    }

    /// The junction-to-reference thermal resistance in °C/W.
    pub fn resistance_c_per_w(&self) -> f64 {
        self.resistance_c_per_w
    }

    /// The cooling medium.
    pub fn medium(&self) -> &CoolingMedium {
        &self.medium
    }

    /// An identity key over the two parameters that determine
    /// [`junction_temp_c`](Self::junction_temp_c) (bit patterns of the
    /// reference temperature and thermal resistance). Two interfaces
    /// with equal keys produce identical junction temperatures for every
    /// power input, so the key is safe to memoize steady-state solves
    /// on; the medium is deliberately excluded because it does not enter
    /// the temperature model.
    pub fn thermal_key(&self) -> (u64, u64) {
        (
            self.reference_temp_c.to_bits(),
            self.resistance_c_per_w.to_bits(),
        )
    }

    /// Steady-state junction temperature for a component dissipating
    /// `power_w`.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or non-finite.
    pub fn junction_temp_c(&self, power_w: f64) -> f64 {
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "invalid power {power_w}"
        );
        self.reference_temp_c + self.resistance_c_per_w * power_w
    }

    /// The maximum power, in watts, that keeps the junction at or below
    /// `tj_max_c`. Returns 0 if the reference temperature already exceeds
    /// the limit.
    pub fn max_power_for_tj(&self, tj_max_c: f64) -> f64 {
        ((tj_max_c - self.reference_temp_c) / self.resistance_c_per_w).max(0.0)
    }

    /// The junction-temperature *swing* (ΔT_j) between idle (`idle_w`) and
    /// peak (`peak_w`) power — the thermal-cycling input of the lifetime
    /// model (Table V's "DTj" column).
    ///
    /// # Panics
    ///
    /// Panics if `idle_w > peak_w`.
    pub fn temp_swing_c(&self, idle_w: f64, peak_w: f64) -> f64 {
        assert!(idle_w <= peak_w, "idle power exceeds peak power");
        self.junction_temp_c(peak_w) - self.junction_temp_c(idle_w)
    }

    /// Builds the interface described by a scenario platform, resolving
    /// any two-phase fluid against the calibration's fluid list.
    ///
    /// # Panics
    ///
    /// Panics if the platform names a fluid absent from `cal`; a spec
    /// from a validated [`ic_scenario::Scenario`] never does.
    pub fn from_platform(spec: &PlatformSpec, cal: &ThermalCalibration) -> Self {
        match &spec.cooling {
            CoolingSpec::Air {
                inlet_c,
                case_rise_c,
            } => ThermalInterface::air(*inlet_c, *case_rise_c, spec.r_th_c_per_w),
            CoolingSpec::TwoPhase { fluid, superheat_c } => {
                let fluid_spec = cal
                    .fluid(fluid)
                    .unwrap_or_else(|| panic!("platform {}: unknown fluid '{fluid}'", spec.label));
                ThermalInterface::two_phase(
                    DielectricFluid::from_spec(fluid_spec),
                    spec.r_th_c_per_w,
                    *superheat_c,
                )
            }
        }
    }
}

/// The characterization rows of a thermal calibration: the calibrated
/// interface per platform, in table order.
///
/// Returns `(label, interface, measured_power_w, observed_tj_c)`.
pub fn table3_platforms_from(
    cal: &ThermalCalibration,
) -> Vec<(&'static str, ThermalInterface, f64, f64)> {
    cal.platforms
        .iter()
        .map(|p| {
            (
                ic_scenario::intern(&p.label),
                ThermalInterface::from_platform(p, cal),
                p.measured_power_w,
                p.observed_tj_c,
            )
        })
        .collect()
}

/// The Table III characterization rows: (platform, cooling, observed
/// power) with the calibrated interfaces for air (0.22 / 0.21 °C/W) and
/// FC-3284 2PIC (BEC on a copper plate: 0.12 °C/W; BEC directly on the
/// CPU IHS: 0.08 °C/W).
///
/// Returns `(label, interface, measured_power_w, paper_observed_tj_c)`.
pub fn table3_platforms() -> Vec<(&'static str, ThermalInterface, f64, f64)> {
    table3_platforms_from(&ThermalCalibration::paper())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_junction_temps_reproduce() {
        for (label, iface, power, observed_tj) in table3_platforms() {
            let tj = iface.junction_temp_c(power);
            assert!(
                (tj - observed_tj).abs() < 1.0,
                "{label}: model {tj:.1} vs observed {observed_tj}"
            );
        }
    }

    #[test]
    fn immersion_drops_tj_17_to_22_c() {
        let rows = table3_platforms();
        let drop_8168 = rows[0].1.junction_temp_c(204.4) - rows[1].1.junction_temp_c(204.5);
        let drop_8180 = rows[2].1.junction_temp_c(204.5) - rows[3].1.junction_temp_c(204.4);
        assert!((17.0..=22.5).contains(&drop_8168), "drop {drop_8168}");
        assert!((17.0..=22.5).contains(&drop_8180), "drop {drop_8180}");
    }

    #[test]
    fn junction_temp_is_monotone_in_power() {
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.1, 1.0);
        let mut last = iface.junction_temp_c(0.0);
        for p in [50.0, 100.0, 200.0, 305.0] {
            let tj = iface.junction_temp_c(p);
            assert!(tj > last);
            last = tj;
        }
    }

    #[test]
    fn zero_power_sits_at_reference() {
        let iface = ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0);
        assert_eq!(iface.junction_temp_c(0.0), 34.0);
    }

    #[test]
    fn max_power_inverts_junction_temp() {
        let iface = ThermalInterface::air(35.0, 12.0, 0.22);
        let p = iface.max_power_for_tj(92.0);
        assert!((iface.junction_temp_c(p) - 92.0).abs() < 1e-9);
        // Below the reference temperature no power is allowed.
        assert_eq!(iface.max_power_for_tj(20.0), 0.0);
    }

    #[test]
    fn coating_halves_two_phase_resistance_only() {
        let bare = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.16, 1.0);
        let coated = bare.clone().with_coating(BoilingCoating::L20227);
        assert!((coated.resistance_c_per_w() - 0.08).abs() < 1e-12);
        let air = ThermalInterface::air(35.0, 12.0, 0.22).with_coating(BoilingCoating::L20227);
        assert_eq!(air.resistance_c_per_w(), 0.22);
    }

    #[test]
    fn temp_swing_matches_resistance_times_power_delta() {
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.1, 0.0);
        assert!((iface.temp_swing_c(5.0, 205.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn hfe_runs_cooler_than_fc() {
        let fc = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 0.0);
        let hfe = ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.08, 0.0);
        assert!(hfe.junction_temp_c(205.0) < fc.junction_temp_c(205.0));
    }

    #[test]
    #[should_panic(expected = "invalid thermal resistance")]
    fn zero_resistance_panics() {
        let _ = ThermalInterface::air(35.0, 0.0, 0.0);
    }
}
