//! Environmental accounting: water usage and vapor management
//! (Section IV, "Environmental impact" / Takeaway 4).
//!
//! The paper projects that 2PIC's Water Usage Effectiveness (WUE) is on
//! par with evaporative-cooled datacenters, and notes that the two fluids
//! used have high global-warming potential, so tanks are sealed and vapor
//! traps capture losses during load swings and servicing.

use crate::fluid::DielectricFluid;
use serde::{Deserialize, Serialize};

/// Water Usage Effectiveness: litres of water per kWh of IT energy.
///
/// # Example
///
/// ```
/// use ic_thermal::environment::WaterUsage;
///
/// let evap = WaterUsage::evaporative();
/// let tpic = WaterUsage::two_phase_immersion();
/// // The paper projects WUE "at par" with evaporative cooling.
/// assert!((tpic.wue_l_per_kwh() - evap.wue_l_per_kwh()).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterUsage {
    wue_l_per_kwh: f64,
}

impl WaterUsage {
    /// Typical evaporative-cooled hyperscale WUE (~1.8 L/kWh, industry
    /// published range 1.5–2.0).
    pub fn evaporative() -> Self {
        WaterUsage { wue_l_per_kwh: 1.8 }
    }

    /// The paper's simulated 2PIC WUE: at par with evaporative cooling
    /// (the condenser loop ultimately rejects heat through a dry cooler,
    /// with trim evaporation on the hottest days).
    pub fn two_phase_immersion() -> Self {
        WaterUsage { wue_l_per_kwh: 1.8 }
    }

    /// A custom WUE value.
    ///
    /// # Panics
    ///
    /// Panics if `wue` is negative or non-finite.
    pub fn custom(wue: f64) -> Self {
        assert!(wue.is_finite() && wue >= 0.0, "invalid WUE {wue}");
        WaterUsage { wue_l_per_kwh: wue }
    }

    /// Litres of water per kWh of IT energy.
    pub fn wue_l_per_kwh(&self) -> f64 {
        self.wue_l_per_kwh
    }

    /// Total litres consumed for `it_energy_kwh` of IT energy.
    pub fn water_l(&self, it_energy_kwh: f64) -> f64 {
        assert!(it_energy_kwh >= 0.0, "invalid energy");
        self.wue_l_per_kwh * it_energy_kwh
    }
}

/// Tracks dielectric-fluid vapor losses across tank-opening events.
///
/// While the tank is sealed no fluid escapes; each servicing event or
/// large load swing vents a small mass, of which the mechanical/chemical
/// traps recapture a configurable fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VaporBudget {
    fluid: DielectricFluid,
    initial_charge_kg: f64,
    lost_kg: f64,
    trap_efficiency: f64,
    events: u32,
}

impl VaporBudget {
    /// Creates a budget for a tank charged with `initial_charge_kg` of
    /// fluid, protected by traps that recapture `trap_efficiency` of any
    /// vented vapor.
    ///
    /// # Panics
    ///
    /// Panics if the charge is not positive or the efficiency is outside
    /// `[0, 1]`.
    pub fn new(fluid: DielectricFluid, initial_charge_kg: f64, trap_efficiency: f64) -> Self {
        assert!(
            initial_charge_kg > 0.0 && initial_charge_kg.is_finite(),
            "invalid charge {initial_charge_kg}"
        );
        assert!(
            (0.0..=1.0).contains(&trap_efficiency),
            "trap efficiency {trap_efficiency} outside [0, 1]"
        );
        VaporBudget {
            fluid,
            initial_charge_kg,
            lost_kg: 0.0,
            trap_efficiency,
            events: 0,
        }
    }

    /// Records a tank-opening event (servicing) or large load swing that
    /// would vent `vented_kg` of vapor before trapping. Returns the mass
    /// actually lost to atmosphere.
    ///
    /// # Panics
    ///
    /// Panics if `vented_kg` is negative or non-finite.
    pub fn record_venting_event(&mut self, vented_kg: f64) -> f64 {
        assert!(
            vented_kg.is_finite() && vented_kg >= 0.0,
            "invalid vented mass {vented_kg}"
        );
        let escaped = vented_kg * (1.0 - self.trap_efficiency);
        self.lost_kg += escaped;
        self.events += 1;
        escaped
    }

    /// Total mass lost to atmosphere so far, kg.
    pub fn lost_kg(&self) -> f64 {
        self.lost_kg
    }

    /// Remaining fluid charge, kg (never negative).
    pub fn remaining_kg(&self) -> f64 {
        (self.initial_charge_kg - self.lost_kg).max(0.0)
    }

    /// The fraction of the initial charge lost.
    pub fn loss_fraction(&self) -> f64 {
        self.lost_kg / self.initial_charge_kg
    }

    /// The number of venting events recorded.
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The fluid being tracked.
    pub fn fluid(&self) -> &DielectricFluid {
        &self.fluid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wue_on_par_with_evaporative() {
        assert_eq!(
            WaterUsage::two_phase_immersion().wue_l_per_kwh(),
            WaterUsage::evaporative().wue_l_per_kwh()
        );
    }

    #[test]
    fn water_scales_with_energy() {
        let w = WaterUsage::custom(2.0);
        assert_eq!(w.water_l(100.0), 200.0);
        assert_eq!(w.water_l(0.0), 0.0);
    }

    #[test]
    fn traps_capture_most_vapor() {
        let mut budget = VaporBudget::new(DielectricFluid::fc3284(), 500.0, 0.95);
        let escaped = budget.record_venting_event(2.0);
        assert!((escaped - 0.1).abs() < 1e-12);
        assert_eq!(budget.events(), 1);
        assert!((budget.remaining_kg() - 499.9).abs() < 1e-9);
    }

    #[test]
    fn losses_accumulate_and_fraction_tracks() {
        let mut budget = VaporBudget::new(DielectricFluid::hfe7000(), 100.0, 0.5);
        for _ in 0..10 {
            budget.record_venting_event(1.0);
        }
        assert!((budget.lost_kg() - 5.0).abs() < 1e-12);
        assert!((budget.loss_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn remaining_never_negative() {
        let mut budget = VaporBudget::new(DielectricFluid::fc3284(), 1.0, 0.0);
        budget.record_venting_event(5.0);
        assert_eq!(budget.remaining_kg(), 0.0);
    }

    #[test]
    #[should_panic(expected = "trap efficiency")]
    fn bad_trap_efficiency_panics() {
        let _ = VaporBudget::new(DielectricFluid::fc3284(), 1.0, 1.5);
    }
}
