//! Experiment harness: drives the client-server application and the
//! auto-scaler through the paper's load schedules and collects the
//! Figure 15/16 series and Table XI metrics.
//!
//! [`Runner`] is a thin [`ControlPlane`] composition: it builds a
//! [`RunWorld`] (the client-server sim plus the run's accumulators),
//! registers the [`AutoScaler`] at the decision period, and lets the
//! runtime drive the ticks. The schedule application, window
//! accounting, and host power model live in the world's
//! `pre_tick`/`post_tick` hooks — the exact code the old hand-written
//! loop ran between controller steps.

use crate::asc::AutoScaler;
use crate::policy::{AscConfig, Policy};
use ic_controlplane::fleet::{apply_to_sim, sim_complete_scale_out, sim_snapshot_into};
use ic_controlplane::{
    Action, ControlPlane, Controller, Outcome, TelemetrySnapshot, TickReport, World,
};
use ic_obs::engine_obs::EngineSpans;
use ic_obs::flight::{FlightHandle, FlightRecorder};
use ic_obs::json::Value;
use ic_obs::metrics::MetricsHandle;
use ic_obs::trace::{TraceHandle, TraceLevel};
use ic_obs::ObsSinks;
use ic_power::units::{Frequency, Voltage};
use ic_power::vf::VfCurve;
use ic_sim::series::TimeSeries;
use ic_sim::stats::{Tally, TimeWeighted};
use ic_sim::time::{SimDuration, SimTime};
use ic_workloads::mgk::ClientServerSim;
use serde::{Deserialize, Serialize};

/// A piecewise-constant client load schedule: `(start_s, qps)` steps in
/// ascending time order.
pub type Schedule = Vec<(f64, f64)>;

/// The paper's full-experiment ramp: 500 → `max` QPS in steps of `step`
/// every `dwell_s` seconds.
///
/// Both coordinates are computed from the step index (`i·dwell_s`,
/// `start + i·step`) rather than accumulated, so long ramps with
/// non-representable steps (0.1 QPS, say) stay exactly on the grid
/// instead of drifting by the summed rounding error.
///
/// # Panics
///
/// Panics if `step` or `dwell_s` is non-positive or non-finite.
pub fn ramp_schedule(start: f64, max: f64, step: f64, dwell_s: f64) -> Schedule {
    assert!(step > 0.0 && step.is_finite(), "invalid ramp step {step}");
    assert!(
        dwell_s > 0.0 && dwell_s.is_finite(),
        "invalid dwell {dwell_s}"
    );
    if start > max + 1e-9 {
        return Vec::new();
    }
    let steps = ((max - start) / step + 1e-9).floor() as usize;
    (0..=steps)
        .map(|i| (i as f64 * dwell_s, start + i as f64 * step))
        .collect()
}

/// The Figure 15 validation schedule: 1000, 2000, 500, 3000, 1000 QPS,
/// five minutes each.
pub fn validation_schedule() -> Schedule {
    [1000.0, 2000.0, 500.0, 3000.0, 1000.0]
        .iter()
        .enumerate()
        .map(|(i, &qps)| (i as f64 * 300.0, qps))
        .collect()
}

/// The dwell (seconds between steps) a schedule was built with, read
/// back off the grid; `300.0` (the paper's five-minute dwell) for
/// schedules too short to tell.
pub fn schedule_dwell(schedule: &Schedule) -> f64 {
    if schedule.len() >= 2 {
        schedule[1].0 - schedule[0].0
    } else {
        300.0
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// The auto-scaler configuration.
    pub asc: AscConfig,
    /// Mean per-request core demand at B2, seconds.
    pub service_mean_s: f64,
    /// Service-time squared coefficient of variation.
    pub service_scv: f64,
    /// Virtual cores per server VM.
    pub vcores_per_vm: u32,
    /// Counter stall fraction of the workload.
    pub stall_fraction: f64,
    /// Server VMs running at t = 0.
    pub initial_vms: usize,
    /// The client load schedule.
    pub schedule: Schedule,
    /// Extra time after the last step before the run ends, seconds.
    pub tail_s: f64,
}

impl RunnerConfig {
    /// The paper's Table XI experiment: Client-Server app (2.8 ms mean
    /// core demand, heavy-tailed), 4 vcores per VM, one initial VM,
    /// 500 → 4000 QPS ramp with 5-minute steps.
    pub fn paper() -> Self {
        RunnerConfig {
            asc: AscConfig::paper(),
            service_mean_s: 0.0028,
            service_scv: 2.0,
            vcores_per_vm: 4,
            stall_fraction: 0.10,
            initial_vms: 1,
            schedule: ramp_schedule(500.0, 4000.0, 500.0, 300.0),
            tail_s: 0.0,
        }
    }

    /// The Figure 15 model-validation experiment: three VMs, scale-up/
    /// down only (the runner disables scale-out/in by setting
    /// `max_vms = min_vms = 3`).
    pub fn validation() -> Self {
        let mut asc = AscConfig::paper();
        asc.min_vms = 3;
        asc.max_vms = 3;
        RunnerConfig {
            asc,
            initial_vms: 3,
            schedule: validation_schedule(),
            tail_s: 0.0,
            ..RunnerConfig::paper()
        }
    }

    /// Total run duration implied by the schedule: the last step holds
    /// for one dwell, plus any tail.
    pub fn duration_s(&self) -> f64 {
        let last = self.schedule.last().map(|&(t, _)| t).unwrap_or(0.0);
        last + schedule_dwell(&self.schedule) + self.tail_s
    }
}

/// The collected outcome of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// The policy that produced this result.
    pub policy: &'static str,
    /// P95 request latency over the whole run, seconds.
    pub p95_latency_s: f64,
    /// Mean request latency, seconds.
    pub avg_latency_s: f64,
    /// Peak concurrent VM count.
    pub max_vms: usize,
    /// Integrated VM×hours consumed.
    pub vm_hours: f64,
    /// Time-average power of the server VMs, watts.
    pub avg_power_w: f64,
    /// Requests completed.
    pub completed: u64,
    /// Discrete events the workload simulation executed.
    pub sim_events: u64,
    /// Fleet-average utilization over time (Figure 16 series).
    pub utilization: TimeSeries,
    /// Frequency as a percentage of the B2→OC1 range (Figure 15 series).
    pub frequency_pct: TimeSeries,
    /// Active VM count over time.
    pub vm_count: TimeSeries,
}

/// The runner's [`World`]: the client-server sim, the load schedule,
/// and every per-window accumulator the run reports. The control plane
/// calls `pre_tick` (schedule application) before each tick and
/// `post_tick` (series, power model, flight windows) after the
/// auto-scaler's decisions have landed.
struct RunWorld {
    sim: ClientServerSim,
    schedule: Schedule,
    next_step: usize,
    vcores_per_vm: u32,
    max_ratio: f64,
    vf: VfCurve,
    base_f: Frequency,
    v0: Voltage,
    latencies: Tally,
    util_series: TimeSeries,
    freq_series: TimeSeries,
    vm_series: TimeSeries,
    power: TimeWeighted,
    vm_integral: TimeWeighted,
    max_vms: usize,
    flight: Option<FlightHandle>,
    snap: TelemetrySnapshot,
}

impl World for RunWorld {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn advance_to(&mut self, t: SimTime) {
        self.sim.advance_to(t);
    }

    /// Applies any schedule steps due at or before the *previous* tick
    /// time (the sim has not advanced yet), exactly where the old loop
    /// applied them — so the QPS change's arrival-chain reseed draws
    /// the RNG at the same instant it always did.
    fn pre_tick(&mut self, _tick_at: SimTime) {
        let t = self.sim.now();
        while self.next_step < self.schedule.len()
            && SimTime::from_secs_f64(self.schedule[self.next_step].0) <= t
        {
            self.sim.set_qps(self.schedule[self.next_step].1);
            self.next_step += 1;
        }
    }

    fn telemetry(&mut self, now: SimTime) -> &TelemetrySnapshot {
        sim_snapshot_into(&self.sim, now, &mut self.snap);
        &self.snap
    }

    fn apply(&mut self, _now: SimTime, _source: &'static str, action: &Action) -> Outcome {
        apply_to_sim(&mut self.sim, action)
    }

    fn complete_scale_out(&mut self, _now: SimTime) -> Outcome {
        sim_complete_scale_out(&mut self.sim)
    }

    fn post_tick(&mut self, now: SimTime, controller: &dyn Controller, report: &TickReport) {
        let asc = controller
            .as_any()
            .downcast_ref::<AutoScaler>()
            .expect("the runner registers only the auto-scaler");
        let trace = asc.last_step().expect("tick ran");

        for (_, lat) in self.sim.take_completions() {
            self.latencies.record(lat);
        }
        self.util_series.push(now, trace.instant_util * 100.0);
        let pct = if self.max_ratio > 1.0 {
            (trace.freq_ratio - 1.0) / (self.max_ratio - 1.0) * 100.0
        } else {
            0.0
        };
        self.freq_series.push(now, pct);
        self.vm_series.push(now, trace.active_vms as f64);
        self.max_vms = self.max_vms.max(trace.active_vms);
        self.vm_integral.set(now, trace.active_vms as f64);

        // Host power: every server VM runs on the single tank-#1
        // Xeon (as in the paper), so report the host's draw. The
        // components mirror `ic_workloads::perfmodel::ServerPowerModel`:
        // platform rest + uncore (scales f·V² when overclocked) +
        // memory + busy cores at full dynamic power + idle cores in
        // shallow sleep (still clocked).
        let f = Frequency::from_mhz((self.base_f.mhz() as f64 * trace.freq_ratio).round() as u32);
        let v = self.vf.voltage_for(f).max(self.v0);
        let fv2 = f.ratio_to(self.base_f) * v.squared_ratio_to(self.v0);
        let busy_cores =
            (trace.instant_util * self.vcores_per_vm as f64 * trace.active_vms as f64).min(28.0);
        let idle_cores = 28.0 - busy_cores;
        let host_w = 45.0 + 15.0 * fv2 + 30.0 + 2.5 * busy_cores * fv2 + 0.8 * idle_cores * fv2;
        self.power.set(now, host_w);

        if let Some(flight) = &self.flight {
            let mut f = flight.borrow_mut();
            f.flush_phases();
            f.record_complete(
                report.window_start,
                now,
                "runner",
                "step",
                TraceLevel::Debug,
                vec![
                    ("util", Value::F64(trace.instant_util)),
                    ("freq_ratio", Value::F64(trace.freq_ratio)),
                    ("vms", Value::U64(trace.active_vms as u64)),
                ],
            );
        }
    }
}

/// Drives one (policy, seed) experiment.
pub struct Runner {
    config: RunnerConfig,
    policy: Policy,
    seed: u64,
    sinks: ObsSinks,
}

impl Runner {
    /// Creates a runner.
    pub fn new(config: RunnerConfig, policy: Policy, seed: u64) -> Self {
        Runner {
            config,
            policy,
            seed,
            sinks: ObsSinks::none(),
        }
    }

    /// Attaches the full observability bundle in one call (see the
    /// per-sink `with_*` builders for what each records).
    pub fn with_sinks(mut self, sinks: ObsSinks) -> Self {
        self.sinks = sinks;
        self
    }

    /// Routes the auto-scaler's structured trace events into `trace`.
    /// Events are keyed by simulation time and recorder sequence only,
    /// so two same-seed runs emit byte-identical streams.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.sinks.set_trace(trace);
        self
    }

    /// Records controller and run-level metrics into `metrics`; besides
    /// the auto-scaler's own counters, the runner leaves
    /// `runner_p95_latency_s`, `runner_vm_hours`, `runner_max_vms`, and
    /// `runner_avg_power_w` gauges so a summary can be printed from the
    /// registry alone.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.sinks.set_metrics(metrics);
        self
    }

    /// Records the run on a flight recorder: a run-level span wrapping
    /// one `runner`/`step` span per decision window, per-event-kind
    /// engine phases (via [`EngineSpans`]) flushed each window onto
    /// their own tracks, and the auto-scaler's decision instants. All
    /// timestamps are simulation time, so same-seed runs export
    /// byte-identical traces.
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.sinks.set_flight(flight);
        self
    }

    /// Runs the experiment to completion.
    pub fn run(self) -> RunResult {
        let cfg = &self.config;
        let mut sim = ClientServerSim::new(
            self.seed,
            cfg.service_mean_s,
            cfg.service_scv,
            cfg.vcores_per_vm,
            cfg.stall_fraction,
        );
        for _ in 0..cfg.initial_vms {
            sim.add_vm();
        }
        let mut asc = AutoScaler::new(cfg.asc.clone(), self.policy);
        asc.attach_sinks(self.sinks.clone());
        let flight = self.sinks.flight().cloned();
        let run_span = flight.as_ref().map(|flight| {
            sim.set_observer(Box::new(EngineSpans::new(flight.clone(), "engine")));
            flight.borrow_mut().open_at(
                SimTime::ZERO,
                "runner",
                "run",
                TraceLevel::Info,
                vec![
                    ("policy", Value::str(self.policy.label())),
                    ("seed", Value::U64(self.seed)),
                ],
            )
        });

        let period = SimDuration::from_secs_f64(cfg.asc.decision_period_s);
        let end = SimTime::from_secs_f64(cfg.duration_s());
        let world = RunWorld {
            sim,
            schedule: cfg.schedule.clone(),
            next_step: 0,
            vcores_per_vm: cfg.vcores_per_vm,
            max_ratio: cfg.asc.max_ratio(),
            vf: VfCurve::xeon_w3175x(),
            base_f: Frequency::from_ghz(3.4),
            v0: Voltage::from_volts(0.90),
            latencies: Tally::new(),
            util_series: TimeSeries::new("util_pct"),
            freq_series: TimeSeries::new("freq_pct_of_range"),
            vm_series: TimeSeries::new("vms"),
            power: TimeWeighted::new(SimTime::ZERO, 0.0),
            vm_integral: TimeWeighted::new(SimTime::ZERO, cfg.initial_vms as f64),
            max_vms: cfg.initial_vms,
            flight: flight.clone(),
            snap: TelemetrySnapshot::at(SimTime::ZERO),
        };

        let mut plane = ControlPlane::new(world);
        plane.register(Box::new(asc), period);
        plane.run_until(end);
        let mut world = plane.into_world();

        if let Some(flight) = &flight {
            let mut f = flight.borrow_mut();
            f.flush_phases();
            if let Some(token) = run_span.flatten() {
                f.close_at(token, end);
            }
        }

        let vm_hours = world.vm_integral.average(end) * end.as_secs_f64() / 3600.0;
        let result = RunResult {
            policy: self.policy.label(),
            p95_latency_s: world.latencies.percentile(0.95),
            avg_latency_s: world.latencies.mean(),
            max_vms: world.max_vms,
            vm_hours,
            avg_power_w: world.power.average(end),
            completed: world.sim.completed_requests(),
            sim_events: world.sim.events_processed(),
            utilization: world.util_series,
            frequency_pct: world.freq_series,
            vm_count: world.vm_series,
        };
        if let Some(metrics) = self.sinks.metrics() {
            let mut m = metrics.borrow_mut();
            m.gauge_set("runner_p95_latency_s", result.p95_latency_s);
            m.gauge_set("runner_avg_latency_s", result.avg_latency_s);
            m.gauge_set("runner_vm_hours", result.vm_hours);
            m.gauge_set("runner_max_vms", result.max_vms as f64);
            m.gauge_set("runner_avg_power_w", result.avg_power_w);
            m.counter_add("runner_requests_completed", result.completed);
            m.counter_add("runner_sim_events", result.sim_events);
        }
        result
    }
}

/// Runs a batch of `(config, policy, seed)` experiments through the
/// deterministic scatter-gather pool ([`ic_par::pool`]) and returns the
/// results **in input order**. Each run is a pure function of its tuple
/// (the whole simulation derives from the explicit seed), so the output
/// is byte-identical for any `IC_PAR_WORKERS` setting. Metrics cannot
/// be attached to batched runs; for flight-recorded batches see
/// [`run_batch_traced`], and use [`Runner`] directly for fully
/// instrumented single runs.
pub fn run_batch(tasks: Vec<(RunnerConfig, Policy, u64)>) -> Vec<RunResult> {
    ic_par::pool().scatter_gather(tasks, |_, (config, policy, seed)| {
        Runner::new(config, policy, seed).run()
    })
}

/// Ring capacity for each batched run's task-local flight recorder.
const TASK_FLIGHT_CAPACITY: usize = 1 << 16;

/// [`run_batch`] with flight recording: each run records into its own
/// task-local recorder (see [`ic_par::ParPool::scatter_gather_traced`])
/// and the finished recorders are absorbed into `flight` **in
/// submission order**, labeled `<policy>#<seed>`, so the merged trace
/// is byte-identical for any worker count.
pub fn run_batch_traced(
    tasks: Vec<(RunnerConfig, Policy, u64)>,
    flight: &FlightHandle,
) -> Vec<RunResult> {
    let labels: Vec<String> = tasks
        .iter()
        .map(|(_, policy, seed)| format!("{}#{}", policy.label(), seed))
        .collect();
    let parts: Vec<(RunResult, FlightRecorder)> = ic_par::pool().scatter_gather_traced(
        tasks,
        TASK_FLIGHT_CAPACITY,
        |_, (config, policy, seed), task_flight| {
            Runner::new(config, policy, seed)
                .with_flight(task_flight.clone())
                .run()
        },
    );
    let mut main = flight.borrow_mut();
    parts
        .into_iter()
        .zip(&labels)
        .map(|((result, recorder), label)| {
            main.absorb(recorder, label);
            result
        })
        .collect()
}

/// Sweeps one policy across a grid of auto-scaler configurations on a
/// shared seed — the ASC sensitivity sweep — in parallel, results in
/// input order.
pub fn sweep_asc_configs(
    base: &RunnerConfig,
    policy: Policy,
    seed: u64,
    configs: Vec<AscConfig>,
) -> Vec<RunResult> {
    run_batch(
        configs
            .into_iter()
            .map(|asc| {
                let mut cfg = base.clone();
                cfg.asc = asc;
                (cfg, policy, seed)
            })
            .collect(),
    )
}

/// Runs all three Table XI policies on the same seed (in parallel, via
/// [`run_batch`]) and returns `(baseline, oc_e, oc_a)`.
pub fn table11_runs(config: RunnerConfig, seed: u64) -> (RunResult, RunResult, RunResult) {
    let mut results = run_batch(vec![
        (config.clone(), Policy::Baseline, seed),
        (config.clone(), Policy::OcE, seed),
        (config, Policy::OcA, seed),
    ]);
    let oc_a = results.pop().expect("three results");
    let oc_e = results.pop().expect("three results");
    let baseline = results.pop().expect("three results");
    (baseline, oc_e, oc_a)
}

/// [`table11_runs`] with flight recording (see [`run_batch_traced`]).
pub fn table11_runs_traced(
    config: RunnerConfig,
    seed: u64,
    flight: &FlightHandle,
) -> (RunResult, RunResult, RunResult) {
    let mut results = run_batch_traced(
        vec![
            (config.clone(), Policy::Baseline, seed),
            (config.clone(), Policy::OcE, seed),
            (config, Policy::OcA, seed),
        ],
        flight,
    );
    let oc_a = results.pop().expect("three results");
    let oc_e = results.pop().expect("three results");
    let baseline = results.pop().expect("three results");
    (baseline, oc_e, oc_a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> RunnerConfig {
        let mut cfg = RunnerConfig::paper();
        // Paper dwell (the control loop needs its detection + creation
        // + cooldown time per step) but a shorter ramp for test speed.
        cfg.schedule = ramp_schedule(500.0, 2000.0, 500.0, 300.0);
        cfg
    }

    #[test]
    fn ramp_schedule_shape() {
        let s = ramp_schedule(500.0, 4000.0, 500.0, 300.0);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], (0.0, 500.0));
        assert_eq!(s[7], (2100.0, 4000.0));
    }

    #[test]
    fn ten_thousand_step_ramp_stays_on_the_grid() {
        // Regression: the schedule used to accumulate `t += dwell` and
        // `qps += step`; with a non-representable 0.1 step the summed
        // rounding error shifted late entries off the grid (and could
        // change the step count). Index arithmetic pins every entry.
        let (start, max, step, dwell) = (0.0, 1000.0, 0.1, 0.1);
        let s = ramp_schedule(start, max, step, dwell);
        assert_eq!(s.len(), 10_001);
        for (i, &(t, qps)) in s.iter().enumerate() {
            assert_eq!(t, i as f64 * dwell, "t off-grid at step {i}");
            assert_eq!(qps, start + i as f64 * step, "qps off-grid at step {i}");
        }
        // The accumulating formulation this replaced really does drift,
        // so these assertions would catch its reintroduction.
        let mut acc = start;
        for _ in 0..10_000 {
            acc += step;
        }
        assert_ne!(acc, start + 10_000.0 * step);
    }

    #[test]
    fn empty_and_degenerate_ramps() {
        assert!(ramp_schedule(2000.0, 1000.0, 500.0, 300.0).is_empty());
        assert_eq!(ramp_schedule(500.0, 500.0, 500.0, 300.0), [(0.0, 500.0)]);
    }

    #[test]
    fn schedule_dwell_reads_the_grid() {
        assert_eq!(
            schedule_dwell(&ramp_schedule(500.0, 4000.0, 500.0, 300.0)),
            300.0
        );
        assert_eq!(schedule_dwell(&validation_schedule()), 300.0);
        assert_eq!(schedule_dwell(&ramp_schedule(0.0, 100.0, 10.0, 60.0)), 60.0);
        // Degenerate schedules fall back to the paper dwell.
        assert_eq!(schedule_dwell(&vec![(0.0, 500.0)]), 300.0);
        assert_eq!(schedule_dwell(&Vec::new()), 300.0);
    }

    #[test]
    fn run_batch_matches_serial_runs_in_order() {
        let tasks = vec![
            (quick_config(), Policy::Baseline, 7),
            (quick_config(), Policy::OcE, 7),
            (quick_config(), Policy::OcA, 7),
        ];
        let serial: Vec<RunResult> = tasks
            .iter()
            .cloned()
            .map(|(c, p, s)| Runner::new(c, p, s).run())
            .collect();
        let batch = run_batch(tasks);
        assert_eq!(batch.len(), serial.len());
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.p95_latency_s, b.p95_latency_s);
            assert_eq!(a.vm_hours, b.vm_hours);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.sim_events, b.sim_events);
        }
    }

    #[test]
    fn traced_run_records_windows_phases_and_decisions() {
        let flight = ic_obs::flight::shared_flight(1 << 16);
        let cfg = quick_config();
        let windows = (cfg.duration_s() / cfg.asc.decision_period_s).round() as u64;
        let r = Runner::new(cfg, Policy::OcA, 3)
            .with_flight(flight.clone())
            .run();
        assert!(r.completed > 0);
        let rec = flight.borrow();
        let counts = rec.counts_by_kind();
        assert_eq!(counts[&("runner", "run")], 1);
        assert_eq!(counts[&("runner", "step")], windows);
        assert!(counts.contains_key(&("asc", "scale_out")), "{counts:?}");
        assert!(counts.contains_key(&("asc", "freq_change")), "{counts:?}");
        assert!(
            counts.keys().any(|(target, _)| *target == "engine"),
            "engine phases missing: {counts:?}"
        );
        // The run span self time is fully covered by its step children.
        assert!(rec.summary().contains("runner"));
    }

    #[test]
    fn traced_batch_is_worker_count_invariant() {
        // In-process variant of the CLI property test: the merged
        // chrome export must not depend on the worker count. (The
        // IC_PAR_WORKERS env path is exercised cross-process by
        // ic-bench's CLI tests — from_env caches the variable once per
        // process, so it can't be varied in-process.)
        use ic_par::ParPool;
        let tasks = || {
            vec![
                (quick_config(), Policy::Baseline, 7),
                (quick_config(), Policy::OcE, 7),
                (quick_config(), Policy::OcA, 7),
            ]
        };
        let export = |workers: usize| {
            let flight = ic_obs::flight::shared_flight(1 << 18);
            let labels = ["baseline#7", "oc-e#7", "oc-a#7"];
            let parts = ParPool::with_workers(workers).scatter_gather_traced(
                tasks(),
                TASK_FLIGHT_CAPACITY,
                |_, (config, policy, seed), task_flight| {
                    Runner::new(config, policy, seed)
                        .with_flight(task_flight.clone())
                        .run()
                },
            );
            let mut main = flight.borrow_mut();
            for ((_, rec), label) in parts.into_iter().zip(labels) {
                main.absorb(rec, label);
            }
            main.to_chrome_trace()
        };
        let serial = export(1);
        assert!(serial.contains("baseline#7"));
        for workers in [2, 7] {
            assert_eq!(serial, export(workers), "workers={workers}");
        }
    }

    #[test]
    fn asc_config_sweep_preserves_input_order() {
        let base = quick_config();
        let mut eager = AscConfig::paper();
        eager.scale_out_threshold = 0.30;
        eager.scale_up_threshold = 0.30;
        let paper = AscConfig::paper();
        let results = sweep_asc_configs(&base, Policy::Baseline, 5, vec![eager, paper]);
        assert_eq!(results.len(), 2);
        // The eager scale-out threshold provisions more aggressively.
        assert!(
            results[0].vm_hours > results[1].vm_hours,
            "eager {} vs paper {}",
            results[0].vm_hours,
            results[1].vm_hours
        );
    }

    #[test]
    fn validation_schedule_matches_paper() {
        let s = validation_schedule();
        assert_eq!(s.len(), 5);
        assert_eq!(s[3], (900.0, 3000.0));
    }

    #[test]
    fn run_produces_complete_series() {
        let r = Runner::new(quick_config(), Policy::Baseline, 1).run();
        assert!(r.completed > 100_000 / 2);
        assert!(!r.utilization.is_empty());
        assert_eq!(r.utilization.len(), r.frequency_pct.len());
        // Both metrics are populated. (The mean can exceed P95 when a
        // few saturation episodes dominate — heavy-tailed data.)
        assert!(r.p95_latency_s > 0.0 && r.avg_latency_s > 0.0);
        assert!(r.max_vms >= 2);
        assert!(r.vm_hours > 0.0);
    }

    #[test]
    fn same_seed_same_result() {
        let a = Runner::new(quick_config(), Policy::OcA, 9).run();
        let b = Runner::new(quick_config(), Policy::OcA, 9).run();
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.vm_hours, b.vm_hours);
    }

    #[test]
    fn overclocking_policies_beat_baseline_tail() {
        let (base, oce, oca) = table11_runs(quick_config(), 7);
        assert!(
            oce.p95_latency_s < base.p95_latency_s,
            "OC-E {} vs baseline {}",
            oce.p95_latency_s,
            base.p95_latency_s
        );
        assert!(
            oca.p95_latency_s < base.p95_latency_s,
            "OC-A {} vs baseline {}",
            oca.p95_latency_s,
            base.p95_latency_s
        );
    }

    #[test]
    fn oca_consumes_no_more_vm_hours() {
        let (base, _oce, oca) = table11_runs(quick_config(), 11);
        assert!(oca.vm_hours <= base.vm_hours + 1e-9);
    }

    #[test]
    fn baseline_frequency_flat_at_zero_pct() {
        let r = Runner::new(quick_config(), Policy::Baseline, 3).run();
        assert_eq!(r.frequency_pct.max(), Some(0.0));
    }

    #[test]
    fn oca_uses_the_frequency_range() {
        let r = Runner::new(quick_config(), Policy::OcA, 3).run();
        assert!(r.frequency_pct.max().unwrap() > 50.0);
    }
}
