//! Auto-scaler policies and configuration.

use serde::{Deserialize, Serialize};

/// Which of the paper's three auto-scaling strategies to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Scale-out/in only, at fixed B2 frequency.
    Baseline,
    /// "Overclock while scaling out": jump to the top frequency bin the
    /// moment the scale-out threshold is crossed, and stay there until
    /// the new VM is serving; no scale-up/down thresholds.
    OcE,
    /// "Overclock before scaling out": hold utilization below the
    /// scale-up threshold with the minimum sufficient frequency,
    /// postponing or avoiding scale-out.
    OcA,
    /// Proactive scale-out without overclocking: forecast utilization
    /// one VM-creation-latency ahead (linear trend over the long
    /// window) and scale out when the *forecast* crosses the threshold.
    /// Models the predictive autoscaling the paper cites \[8\] as the
    /// state of the art it complements.
    Predictive,
}

impl Policy {
    /// The label used in Table XI.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Baseline => "Baseline",
            Policy::OcE => "OC-E",
            Policy::OcA => "OC-A",
            Policy::Predictive => "Predictive",
        }
    }
}

/// Which telemetry signal drives the scaling thresholds. "Although CPU
/// utilization is the most common metric for auto-scaling, some users
/// specify others like memory utilization, thread count, or queue
/// length" (paper Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScalingMetric {
    /// Average CPU utilization of the server VMs (the paper's default).
    #[default]
    Utilization,
    /// Mean queued-requests-per-vcore, squashed through `q/(q+1)` so the
    /// same 0–1 thresholds apply (0 queue → 0, deep queue → 1).
    QueueLength,
}

/// The control-loop parameters (paper Section VI-D experimental setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AscConfig {
    /// Scale out when the long-window mean utilization exceeds this.
    pub scale_out_threshold: f64,
    /// Scale in when it falls below this.
    pub scale_in_threshold: f64,
    /// Scale up when the short-window mean utilization exceeds this.
    pub scale_up_threshold: f64,
    /// Scale down toward base frequency below this.
    pub scale_down_threshold: f64,
    /// Long (scale-out/in) averaging window, seconds.
    pub out_window_s: f64,
    /// Short (scale-up/down) averaging window, seconds.
    pub up_window_s: f64,
    /// Control decision period, seconds.
    pub decision_period_s: f64,
    /// How long a scale-out takes before the VM serves, seconds.
    pub scale_out_latency_s: f64,
    /// Fractional capacity the serving VMs lose while a scale-out is in
    /// flight (image transfer / network traffic — the paper emulates "the
    /// impact of network traffic" in its 60-second scale-outs).
    pub scale_out_interference: f64,
    /// Minimum time after a topology change (VM added or removed) before
    /// another scale-out/in decision, seconds — lets the backlog drain
    /// so the utilization windows reflect the new capacity.
    pub cooldown_s: f64,
    /// Never scale in below this many VMs.
    pub min_vms: usize,
    /// Never scale out beyond this many VMs.
    pub max_vms: usize,
    /// The selectable frequency ratios (relative to B2), ascending.
    pub freq_ratios: Vec<f64>,
    /// The signal driving the scale-out/in thresholds.
    pub metric: ScalingMetric,
}

impl AscConfig {
    /// The paper's setup: 50 %/20 % out/in on a 3-minute window,
    /// 40 %/20 % up/down on a 30-second window, 3-second decisions,
    /// 60-second scale-out latency, and 8 bins from 3.4 to 4.1 GHz.
    pub fn paper() -> Self {
        let bins = 8;
        let freq_ratios = (0..bins).map(|i| (3.4 + 0.1 * i as f64) / 3.4).collect();
        AscConfig {
            scale_out_threshold: 0.50,
            scale_in_threshold: 0.20,
            scale_up_threshold: 0.40,
            scale_down_threshold: 0.20,
            out_window_s: 180.0,
            up_window_s: 30.0,
            decision_period_s: 3.0,
            scale_out_latency_s: 60.0,
            scale_out_interference: 0.32,
            cooldown_s: 90.0,
            min_vms: 1,
            max_vms: 10,
            freq_ratios,
            metric: ScalingMetric::Utilization,
        }
    }

    /// The highest selectable ratio.
    pub fn max_ratio(&self) -> f64 {
        *self
            .freq_ratios
            .last()
            .expect("config has at least one frequency ratio")
    }

    /// The lowest (base) ratio.
    pub fn base_ratio(&self) -> f64 {
        *self
            .freq_ratios
            .first()
            .expect("config has at least one frequency ratio")
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are disordered, windows or periods are
    /// non-positive, ratios are not ascending from 1.0, or VM bounds are
    /// inverted.
    pub fn validate(&self) {
        assert!(
            0.0 < self.scale_in_threshold && self.scale_in_threshold < self.scale_out_threshold,
            "scale-in must sit below scale-out"
        );
        assert!(
            self.scale_up_threshold <= self.scale_out_threshold,
            "scale-up must not exceed scale-out"
        );
        assert!(
            self.scale_down_threshold <= self.scale_up_threshold,
            "scale-down must not exceed scale-up"
        );
        assert!(self.decision_period_s > 0.0 && self.out_window_s > 0.0 && self.up_window_s > 0.0);
        assert!(self.scale_out_latency_s >= 0.0);
        assert!(
            (0.0..1.0).contains(&self.scale_out_interference),
            "interference must be in [0, 1)"
        );
        assert!(self.cooldown_s >= 0.0, "cooldown must be non-negative");
        assert!(self.min_vms >= 1 && self.min_vms <= self.max_vms);
        assert!(!self.freq_ratios.is_empty(), "need frequency bins");
        assert!(
            (self.freq_ratios[0] - 1.0).abs() < 1e-9,
            "the lowest ratio must be 1.0 (B2)"
        );
        assert!(
            self.freq_ratios.windows(2).all(|w| w[0] < w[1]),
            "ratios must ascend"
        );
    }
}

impl Default for AscConfig {
    fn default() -> Self {
        AscConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let c = AscConfig::paper();
        c.validate();
        assert_eq!(c.freq_ratios.len(), 8);
        assert!((c.max_ratio() - 4.1 / 3.4).abs() < 1e-9);
        assert_eq!(c.base_ratio(), 1.0);
        assert_eq!(c.scale_out_threshold, 0.50);
        assert_eq!(c.scale_up_threshold, 0.40);
        assert_eq!(c.scale_out_latency_s, 60.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::Baseline.label(), "Baseline");
        assert_eq!(Policy::OcE.label(), "OC-E");
        assert_eq!(Policy::OcA.label(), "OC-A");
    }

    #[test]
    #[should_panic(expected = "scale-in must sit below scale-out")]
    fn disordered_thresholds_panic() {
        let mut c = AscConfig::paper();
        c.scale_in_threshold = 0.9;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ratios must ascend")]
    fn disordered_ratios_panic() {
        let mut c = AscConfig::paper();
        c.freq_ratios = vec![1.0, 1.2, 1.1];
        c.validate();
    }
}
