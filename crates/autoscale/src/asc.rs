//! The ASC control loop.
//!
//! Every decision period the controller samples each server VM's
//! Aperf/Pperf counters, folds the fleet-average utilization into its
//! two trailing windows, and decides actions: scale-out (after the
//! configured VM-creation latency), scale-in, and — for the
//! overclocking policies — frequency changes driven by Equation 1.
//!
//! [`AutoScaler`] implements [`ic_controlplane::Controller`]: it reads
//! the shared [`TelemetrySnapshot`] and returns typed [`Action`]s, so
//! it runs under the [`ic_controlplane::ControlPlane`] alongside the
//! governor, capping, and failover controllers. The [`AutoScaler::step`]
//! entry point drives one observe/apply cycle directly against a
//! [`ClientServerSim`] for standalone use.

use crate::policy::{AscConfig, Policy, ScalingMetric};
use ic_controlplane::fleet::{apply_to_sim, sim_complete_scale_out, sim_snapshot};
use ic_controlplane::{Action, Controller, FreqTarget, Outcome, TelemetrySnapshot};
use ic_obs::flight::FlightHandle;
use ic_obs::json::Value;
use ic_obs::metrics::MetricsHandle;
use ic_obs::trace::{TraceHandle, TraceLevel};
use ic_obs::ObsSinks;
use ic_sim::stats::SlidingWindow;
use ic_sim::time::{SimDuration, SimTime};
use ic_telemetry::counters::CounterSample;
use ic_telemetry::eq1::{min_frequency_for_threshold, predict_utilization};
use ic_workloads::mgk::ClientServerSim;
use std::collections::HashMap;

/// What the controller did in one decision step (for tracing and
/// figure generation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTrace {
    /// Decision timestamp.
    pub at: SimTime,
    /// Fleet-average utilization over the last decision period.
    pub instant_util: f64,
    /// Long-window (scale-out) mean utilization.
    pub out_window_util: f64,
    /// Short-window (scale-up) mean utilization.
    pub up_window_util: f64,
    /// The frequency ratio in force after this step.
    pub freq_ratio: f64,
    /// Active VM count after this step (excludes pending creations).
    pub active_vms: usize,
    /// `true` if a scale-out was initiated in this step.
    pub scaled_out: bool,
    /// `true` if a VM was removed in this step.
    pub scaled_in: bool,
}

/// The auto-scaler controller.
pub struct AutoScaler {
    config: AscConfig,
    policy: Policy,
    out_window: SlidingWindow,
    up_window: SlidingWindow,
    last_samples: HashMap<u64, CounterSample>,
    pending_ready_at: Option<SimTime>,
    last_topology_change: Option<SimTime>,
    current_ratio: f64,
    scale_outs: u32,
    scale_ins: u32,
    last_step: Option<StepTrace>,
    sinks: ObsSinks,
}

impl std::fmt::Debug for AutoScaler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoScaler")
            .field("policy", &self.policy)
            .field("current_ratio", &self.current_ratio)
            .field("pending", &self.pending_ready_at)
            .finish()
    }
}

impl AutoScaler {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`AscConfig::validate`]).
    pub fn new(config: AscConfig, policy: Policy) -> Self {
        config.validate();
        AutoScaler {
            out_window: SlidingWindow::new(SimDuration::from_secs_f64(config.out_window_s)),
            up_window: SlidingWindow::new(SimDuration::from_secs_f64(config.up_window_s)),
            config,
            policy,
            last_samples: HashMap::new(),
            pending_ready_at: None,
            last_topology_change: None,
            current_ratio: 1.0,
            scale_outs: 0,
            scale_ins: 0,
            last_step: None,
            sinks: ObsSinks::none(),
        }
    }

    /// Attaches the full observability bundle in one call (see the
    /// per-sink `attach_*` methods for what each records).
    pub fn attach_sinks(&mut self, sinks: ObsSinks) {
        self.sinks = sinks;
    }

    /// Attaches a trace recorder: every controller transition —
    /// scale-out initiation/completion, scale-in, frequency change —
    /// is emitted with its Equation-1 inputs and outputs, and each
    /// decision step leaves a `Debug`-level record.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.sinks.set_trace(trace);
    }

    /// Attaches a metrics registry: decision counters
    /// (`asc_decisions_total{kind}`), the active-VM and frequency-ratio
    /// gauges, and a utilization histogram (`asc_step_util`).
    pub fn attach_metrics(&mut self, metrics: MetricsHandle) {
        self.sinks.set_metrics(metrics);
    }

    /// Attaches a flight recorder: every emitted controller transition
    /// is mirrored as an instant on the flight timeline (same kinds and
    /// fields as [`attach_trace`](Self::attach_trace)), so scale
    /// decisions and Equation-1 evaluations line up with engine phases
    /// and runner windows in the exported trace.
    pub fn attach_flight(&mut self, flight: FlightHandle) {
        self.sinks.set_flight(flight);
    }

    fn emit(
        &self,
        now: SimTime,
        level: TraceLevel,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.sinks.instant(now, "asc", level, kind, fields);
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The current frequency ratio.
    pub fn current_ratio(&self) -> f64 {
        self.current_ratio
    }

    /// Total scale-outs initiated.
    pub fn scale_outs(&self) -> u32 {
        self.scale_outs
    }

    /// Total scale-ins performed.
    pub fn scale_ins(&self) -> u32 {
        self.scale_ins
    }

    /// `true` while a VM creation is in flight.
    pub fn scale_out_pending(&self) -> bool {
        self.pending_ready_at.is_some()
    }

    /// The most recent decision step, if any (harnesses read this after
    /// each control-plane tick to collect their series).
    pub fn last_step(&self) -> Option<StepTrace> {
        self.last_step
    }

    /// The scale-out action this configuration decides (the control
    /// plane defers its maturation by the action's latency).
    fn scale_out_action(&self) -> Action {
        Action::ScaleOut {
            latency: SimDuration::from_secs_f64(self.config.scale_out_latency_s),
            interference: self.config.scale_out_interference,
        }
    }

    /// Runs one decision step at the sim's current time, applying the
    /// decided actions directly. The simulation must already have been
    /// advanced to the decision instant. This is the standalone
    /// equivalent of one [`ControlPlane`](ic_controlplane::ControlPlane)
    /// tick.
    pub fn step(&mut self, sim: &mut ClientServerSim) -> StepTrace {
        let now = sim.now();

        // Complete a pending scale-out whose latency has elapsed.
        if let Some(ready) = self.pending_ready_at {
            if now >= ready {
                let action = self.scale_out_action();
                let outcome = sim_complete_scale_out(sim);
                for follow_up in self.applied(now, &action, &outcome) {
                    apply_to_sim(sim, &follow_up);
                }
            }
        }

        let snapshot = sim_snapshot(sim, now);
        for action in self.observe(&snapshot) {
            apply_to_sim(sim, &action);
        }
        self.last_step.expect("observe records a step")
    }

    /// OC-A frequency selection: Equation 1 picks the minimum ratio
    /// keeping short-window utilization at or below the scale-up
    /// threshold; if none suffices, the top bin; below the scale-down
    /// threshold, relax toward the cheapest sufficient bin.
    fn oc_a_ratio(&self, up_util: f64, productivity: f64) -> f64 {
        let util_at_base = predict_utilization(
            up_util.clamp(0.0, 1.0),
            productivity,
            self.current_ratio,
            1.0,
        )
        .clamp(0.0, 1.0);
        if up_util > self.config.scale_up_threshold {
            min_frequency_for_threshold(
                util_at_base,
                productivity,
                1.0,
                &self.config.freq_ratios,
                self.config.scale_up_threshold,
            )
            .unwrap_or_else(|| self.config.max_ratio())
        } else if up_util < self.config.scale_down_threshold {
            // Load is light: pick the cheapest bin that still keeps the
            // (rescaled) utilization under the scale-up threshold.
            min_frequency_for_threshold(
                util_at_base,
                productivity,
                1.0,
                &self.config.freq_ratios,
                self.config.scale_up_threshold,
            )
            .unwrap_or_else(|| self.config.max_ratio())
        } else {
            // In the hysteresis band: hold.
            self.current_ratio
        }
    }

    fn reset_windows(&mut self) {
        self.out_window = SlidingWindow::new(SimDuration::from_secs_f64(self.config.out_window_s));
        self.up_window = SlidingWindow::new(SimDuration::from_secs_f64(self.config.up_window_s));
    }
}

impl Controller for AutoScaler {
    fn name(&self) -> &'static str {
        "asc"
    }

    /// One decision step over the shared snapshot. Emits the same trace
    /// stream as ever; the returned actions land on the world in
    /// decision order (scale first, then any frequency change).
    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let now = snapshot.now;
        let mut actions = Vec::new();

        // Drop samples for VMs that vanished outside this controller's
        // control (failover migrations in composed worlds). A no-op in
        // standalone runs: scale-in already removes its victim's sample.
        if self.last_samples.len() > snapshot.vms.len() {
            self.last_samples
                .retain(|&vm, _| snapshot.vms.iter().any(|v| v.vm == vm));
        }

        // Telemetry: per-VM utilization and productivity over the last
        // period.
        let mut total_util = 0.0;
        let mut d_aperf = 0.0;
        let mut d_pperf = 0.0;
        for v in &snapshot.vms {
            if let Some(prev) = self.last_samples.get(&v.vm) {
                let delta = v.sample.since(prev);
                // Busy-core utilization in [0, 1] (busy core-seconds
                // over vcores × wall), 0 for a zero-length interval —
                // the same definition as
                // `ClientServerSim::utilization_since`.
                let wall = delta.d_wall_seconds();
                if wall > 0.0 {
                    total_util +=
                        (delta.d_busy_seconds() / (v.vcores as f64 * wall)).clamp(0.0, 1.0);
                }
                d_aperf += delta.d_aperf();
                d_pperf += delta.d_pperf();
            }
            self.last_samples.insert(v.vm, v.sample);
        }
        let active = &snapshot.vms;
        let instant_util = if active.is_empty() {
            0.0
        } else {
            match self.config.metric {
                ScalingMetric::Utilization => total_util / active.len() as f64,
                ScalingMetric::QueueLength => {
                    // Queue depth per vcore, squashed into [0, 1) so the
                    // 0–1 thresholds stay meaningful.
                    let queued: usize = active.iter().map(|v| v.queue_depth).sum();
                    let vcores: u32 = active.iter().map(|v| v.vcores).sum();
                    let q = queued as f64 / vcores.max(1) as f64;
                    q / (q + 1.0)
                }
            }
        };
        let productivity = if d_aperf > 0.0 {
            (d_pperf / d_aperf).clamp(0.0, 1.0)
        } else {
            1.0
        };

        self.out_window.record(now, instant_util);
        self.up_window.record(now, instant_util);
        let out_util = self.out_window.mean().unwrap_or(0.0);
        let up_util = self.up_window.mean().unwrap_or(0.0);

        // Scale-out / scale-in (all policies).
        let mut scaled_out = false;
        let mut scaled_in = false;
        let cooled_down = self
            .last_topology_change
            .is_none_or(|at| (now - at).as_secs_f64() >= self.config.cooldown_s);
        // The predictive policy scales out on the *forecast* utilization
        // one creation-latency ahead, not just the trailing mean.
        let out_signal = if self.policy == Policy::Predictive {
            self.out_window
                .forecast(self.config.scale_out_latency_s)
                .unwrap_or(0.0)
                .max(out_util)
        } else {
            out_util
        };
        if self.pending_ready_at.is_none() && cooled_down {
            if out_signal > self.config.scale_out_threshold && active.len() < self.config.max_vms {
                self.pending_ready_at =
                    Some(now + SimDuration::from_secs_f64(self.config.scale_out_latency_s));
                self.scale_outs += 1;
                scaled_out = true;
                actions.push(self.scale_out_action());
                self.emit(
                    now,
                    TraceLevel::Info,
                    "scale_out",
                    vec![
                        ("out_signal", Value::F64(out_signal)),
                        ("threshold", Value::F64(self.config.scale_out_threshold)),
                        ("active_vms", Value::U64(active.len() as u64)),
                        ("latency_s", Value::F64(self.config.scale_out_latency_s)),
                    ],
                );
            } else if out_util < self.config.scale_in_threshold
                && active.len() > self.config.min_vms
            {
                if let Some(v) = active.last() {
                    let vm = v.vm;
                    actions.push(Action::ScaleIn { vm });
                    self.last_samples.remove(&vm);
                    self.scale_ins += 1;
                    scaled_in = true;
                    self.last_topology_change = Some(now);
                    self.reset_windows();
                    self.emit(
                        now,
                        TraceLevel::Info,
                        "scale_in",
                        vec![
                            ("vm", Value::U64(vm)),
                            ("out_util", Value::F64(out_util)),
                            ("threshold", Value::F64(self.config.scale_in_threshold)),
                            ("active_vms", Value::U64((active.len() - 1) as u64)),
                        ],
                    );
                }
            }
        }

        // Scale-up / scale-down (policy-specific).
        let new_ratio = match self.policy {
            Policy::Baseline | Policy::Predictive => 1.0,
            Policy::OcE => {
                if self.pending_ready_at.is_some() {
                    self.config.max_ratio()
                } else {
                    1.0
                }
            }
            Policy::OcA => self.oc_a_ratio(up_util, productivity),
        };
        if (new_ratio - self.current_ratio).abs() > 1e-12 {
            // Equation 1's inputs justify the transition: what the
            // short-window utilization projects to at the base frequency
            // determines the minimum sufficient ratio.
            let util_at_base = predict_utilization(
                up_util.clamp(0.0, 1.0),
                productivity,
                self.current_ratio,
                1.0,
            )
            .clamp(0.0, 1.0);
            self.emit(
                now,
                TraceLevel::Info,
                "freq_change",
                vec![
                    ("old_ratio", Value::F64(self.current_ratio)),
                    ("new_ratio", Value::F64(new_ratio)),
                    ("up_util", Value::F64(up_util)),
                    ("productivity", Value::F64(productivity)),
                    ("util_at_base", Value::F64(util_at_base)),
                ],
            );
            self.current_ratio = new_ratio;
            actions.push(Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: new_ratio,
            });
        }

        let step = StepTrace {
            at: now,
            instant_util,
            out_window_util: out_util,
            up_window_util: up_util,
            freq_ratio: self.current_ratio,
            active_vms: active.len() - scaled_in as usize,
            scaled_out,
            scaled_in,
        };
        self.emit(
            now,
            TraceLevel::Debug,
            "step",
            vec![
                ("instant_util", Value::F64(step.instant_util)),
                ("out_util", Value::F64(step.out_window_util)),
                ("up_util", Value::F64(step.up_window_util)),
                ("productivity", Value::F64(productivity)),
                ("freq_ratio", Value::F64(step.freq_ratio)),
                ("active_vms", Value::U64(step.active_vms as u64)),
            ],
        );
        if let Some(metrics) = self.sinks.metrics() {
            let mut m = metrics.borrow_mut();
            m.counter_add("asc_decisions_total{step}", 1);
            if step.scaled_out {
                m.counter_add("asc_decisions_total{scale_out}", 1);
            }
            if step.scaled_in {
                m.counter_add("asc_decisions_total{scale_in}", 1);
            }
            m.gauge_set("asc_active_vms", step.active_vms as f64);
            m.gauge_set("asc_freq_ratio", step.freq_ratio);
            m.register_histogram("asc_step_util", 1e-3, 1.25, 40);
            m.histogram_record("asc_step_util", step.instant_util);
        }
        self.last_step = Some(step);
        actions
    }

    /// Completes a matured scale-out: restores full capacity, restarts
    /// the windows (utilization steps down; stale samples would
    /// immediately re-trigger), and hands the newborn VM the fleet's
    /// current frequency ratio.
    fn applied(&mut self, now: SimTime, action: &Action, outcome: &Outcome) -> Vec<Action> {
        match (action, outcome) {
            (Action::ScaleOut { .. }, Outcome::VmCreated { vm }) => {
                self.pending_ready_at = None;
                self.last_topology_change = Some(now);
                self.reset_windows();
                // `last_samples` holds exactly the pre-maturation active
                // set (every active VM is sampled every step, and no
                // topology change can interleave while a creation is
                // pending), so the post-maturation count is len + 1.
                let active_vms = self.last_samples.len() as u64 + 1;
                self.emit(
                    now,
                    TraceLevel::Info,
                    "scale_out_complete",
                    vec![
                        ("vm", Value::U64(*vm)),
                        ("active_vms", Value::U64(active_vms)),
                        ("freq_ratio", Value::F64(self.current_ratio)),
                    ],
                );
                vec![
                    Action::SetFrequency {
                        target: FreqTarget::Vm(*vm),
                        ratio: self.current_ratio,
                    },
                    // Image transfer over: restore full capacity.
                    Action::SetShare { share: 1.0 },
                ]
            }
            (Action::ScaleOut { .. }, Outcome::Rejected { .. }) => {
                // A composed world may decline the maturation (cluster
                // out of capacity). Clear the pending creation so the
                // scaler can retry instead of wedging; peers get their
                // full share back.
                self.pending_ready_at = None;
                vec![Action::SetShare { share: 1.0 }]
            }
            _ => Vec::new(),
        }
    }

    ic_controlplane::impl_controller_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with(vms: usize, qps: f64, seed: u64) -> ClientServerSim {
        let mut sim = ClientServerSim::new(seed, 0.0028, 1.5, 4, 0.1);
        for _ in 0..vms {
            sim.add_vm();
        }
        sim.set_qps(qps);
        sim
    }

    fn drive(asc: &mut AutoScaler, sim: &mut ClientServerSim, seconds: u64) -> Vec<StepTrace> {
        let mut traces = Vec::new();
        let period = SimDuration::from_secs(3);
        let mut t = sim.now();
        let end = t + SimDuration::from_secs(seconds);
        while t < end {
            t += period;
            sim.advance_to(t);
            traces.push(asc.step(sim));
        }
        traces
    }

    #[test]
    fn baseline_scales_out_under_load() {
        // 1 VM at 1000 QPS → util 0.70 > 0.50 → scale out.
        let mut sim = sim_with(1, 1000.0, 1);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 300);
        assert!(asc.scale_outs() >= 1);
        assert_eq!(traces.last().unwrap().active_vms, 2);
        // Baseline never overclocks.
        assert!(traces.iter().all(|t| t.freq_ratio == 1.0));
    }

    #[test]
    fn scale_out_takes_60_seconds() {
        let mut sim = sim_with(1, 1000.0, 2);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 300);
        let initiated = traces.iter().find(|t| t.scaled_out).unwrap().at;
        let completed = traces.iter().find(|t| t.active_vms == 2).unwrap().at;
        let latency = (completed - initiated).as_secs_f64();
        assert!(
            (60.0..66.1).contains(&latency),
            "creation latency {latency}s"
        );
    }

    #[test]
    fn baseline_scales_in_when_idle() {
        let mut sim = sim_with(3, 100.0, 3); // util ~0.023 << 0.20
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 600);
        assert!(asc.scale_ins() >= 2);
        assert_eq!(traces.last().unwrap().active_vms, 1);
    }

    #[test]
    fn never_scales_below_min_vms() {
        let mut sim = sim_with(1, 10.0, 4);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 600);
        assert!(traces.iter().all(|t| t.active_vms >= 1));
    }

    #[test]
    fn oce_overclocks_only_during_scale_out() {
        let mut sim = sim_with(1, 1000.0, 5);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcE);
        let traces = drive(&mut asc, &mut sim, 400);
        let max_ratio = AscConfig::paper().max_ratio();
        // While pending: max ratio; once the VM lands and load spreads:
        // back to 1.0.
        assert!(traces
            .iter()
            .any(|t| (t.freq_ratio - max_ratio).abs() < 1e-9));
        assert_eq!(traces.last().unwrap().freq_ratio, 1.0);
        assert_eq!(traces.last().unwrap().active_vms, 2);
    }

    #[test]
    fn oca_holds_utilization_with_frequency_instead_of_vms() {
        // 1 VM at 800 QPS: util 0.56 at base. OC-A can push it to
        // 0.56×(0.9/1.206+0.1) ≈ 0.47 < 0.50, avoiding scale-out.
        let mut sim = sim_with(1, 800.0, 6);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        let traces = drive(&mut asc, &mut sim, 600);
        assert_eq!(asc.scale_outs(), 0, "OC-A should avoid scaling out");
        assert_eq!(traces.last().unwrap().active_vms, 1);
        assert!(traces.last().unwrap().freq_ratio > 1.1);
        // And the achieved utilization sits near/below the out threshold.
        assert!(traces.last().unwrap().up_window_util < 0.52);
    }

    #[test]
    fn oca_scales_down_when_load_fades() {
        let mut sim = sim_with(1, 800.0, 7);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        drive(&mut asc, &mut sim, 300);
        assert!(asc.current_ratio() > 1.1);
        sim.set_qps(100.0); // util collapses
        drive(&mut asc, &mut sim, 300);
        assert_eq!(asc.current_ratio(), 1.0);
    }

    #[test]
    fn oca_still_scales_out_when_frequency_is_not_enough() {
        // 1 VM at 1600 QPS: even at the top bin, util ≈ 1.12×0.83 ≈ 0.93
        // > 0.50 → the scale-out rule fires.
        let mut sim = sim_with(1, 1600.0, 8);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        let traces = drive(&mut asc, &mut sim, 400);
        assert!(asc.scale_outs() >= 1);
        assert!(traces.last().unwrap().active_vms >= 2);
    }

    #[test]
    fn predictive_scales_out_earlier_than_baseline() {
        // Under a steadily rising load, the forecast crosses the
        // threshold before the trailing mean does.
        let run = |policy: Policy| {
            let mut sim = ClientServerSim::new(21, 0.0028, 1.5, 4, 0.1);
            sim.add_vm();
            sim.set_qps(400.0);
            let mut asc = AutoScaler::new(AscConfig::paper(), policy);
            let mut first_out: Option<f64> = None;
            let period = SimDuration::from_secs(3);
            let mut t = sim.now();
            for step_i in 0..200 {
                // Ramp the load 10 QPS every 15 s.
                if step_i % 5 == 0 {
                    sim.set_qps(400.0 + step_i as f64 * 10.0);
                }
                t += period;
                sim.advance_to(t);
                let trace = asc.step(&mut sim);
                if trace.scaled_out && first_out.is_none() {
                    first_out = Some(trace.at.as_secs_f64());
                }
            }
            first_out
        };
        let baseline = run(Policy::Baseline);
        let predictive = run(Policy::Predictive);
        match (predictive, baseline) {
            (Some(p), Some(b)) => assert!(p < b, "predictive {p} vs baseline {b}"),
            (Some(_), None) => {} // predictive fired, baseline never did: fine
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn queue_length_metric_scales_out_under_backlog() {
        use crate::policy::ScalingMetric;
        // Saturating load builds queues; the queue metric must trigger a
        // scale-out even though we never read CPU utilization.
        let mut cfg = AscConfig::paper();
        cfg.metric = ScalingMetric::QueueLength;
        let mut sim = sim_with(1, 1600.0, 33); // offered load > 1 VM's capacity
        let mut asc = AutoScaler::new(cfg, Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 400);
        assert!(asc.scale_outs() >= 1, "queue metric should fire");
        // Queue-length control is bang-bang: once the new VM drains the
        // backlog the signal collapses and the controller may scale back
        // in — assert the peak, not the endpoint.
        let peak = traces.iter().map(|t| t.active_vms).max().unwrap();
        assert!(peak >= 2, "peak VMs {peak}");
    }

    #[test]
    fn queue_length_metric_stays_quiet_when_uncongested() {
        use crate::policy::ScalingMetric;
        let mut cfg = AscConfig::paper();
        cfg.metric = ScalingMetric::QueueLength;
        // Utilization 0.56 would trip the 0.50 utilization threshold,
        // but with 4 cores the queue stays near-empty at this load.
        let mut sim = sim_with(1, 800.0, 34);
        let mut asc = AutoScaler::new(cfg, Policy::Baseline);
        drive(&mut asc, &mut sim, 400);
        assert_eq!(asc.scale_outs(), 0, "no backlog, no scale-out");
    }

    #[test]
    fn predictive_never_overclocks() {
        let mut sim = sim_with(1, 1000.0, 22);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Predictive);
        let traces = drive(&mut asc, &mut sim, 300);
        assert!(traces.iter().all(|t| t.freq_ratio == 1.0));
        assert!(asc.scale_outs() >= 1);
    }

    #[test]
    fn one_scale_out_at_a_time() {
        let mut sim = sim_with(1, 4000.0, 9);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::Baseline);
        let traces = drive(&mut asc, &mut sim, 63);
        // Only one initiation can be pending in the first minute.
        assert_eq!(traces.iter().filter(|t| t.scaled_out).count(), 1);
    }

    #[test]
    fn new_vms_inherit_the_current_ratio() {
        let mut sim = sim_with(1, 1600.0, 10);
        let mut asc = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        drive(&mut asc, &mut sim, 400);
        for vm in sim.active_vms() {
            assert!(
                (sim.freq_ratio(vm) - asc.current_ratio()).abs() < 1e-9,
                "vm {vm} ratio"
            );
        }
    }

    #[test]
    fn step_and_observe_share_one_decision_path() {
        // The standalone `step` entry point is a thin observe/apply
        // cycle: driving the Controller API by hand over the same sim
        // and seed must reproduce `drive`'s trajectory exactly.
        let mut sim_a = sim_with(1, 1000.0, 77);
        let mut asc_a = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        let traces_a = drive(&mut asc_a, &mut sim_a, 300);

        let mut sim_b = sim_with(1, 1000.0, 77);
        let mut asc_b = AutoScaler::new(AscConfig::paper(), Policy::OcA);
        let mut traces_b = Vec::new();
        let period = SimDuration::from_secs(3);
        let mut t = sim_b.now();
        let end = t + SimDuration::from_secs(300);
        while t < end {
            t += period;
            sim_b.advance_to(t);
            let now = sim_b.now();
            if let Some(ready) = asc_b.pending_ready_at {
                if now >= ready {
                    let action = asc_b.scale_out_action();
                    let outcome = sim_complete_scale_out(&mut sim_b);
                    for follow_up in asc_b.applied(now, &action, &outcome) {
                        apply_to_sim(&mut sim_b, &follow_up);
                    }
                }
            }
            let snapshot = sim_snapshot(&sim_b, now);
            for action in asc_b.observe(&snapshot) {
                apply_to_sim(&mut sim_b, &action);
            }
            traces_b.push(asc_b.last_step().unwrap());
        }
        assert_eq!(traces_a, traces_b);
    }
}
