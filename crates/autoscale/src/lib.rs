//! The overclocking-enhanced VM auto-scaler of paper Section VI-D
//! (architecture in Figure 14).
//!
//! The auto-scaler (ASC) watches the server VMs behind a load balancer
//! and makes two kinds of decision:
//!
//! * **scale-out / scale-in** — add or remove a VM, one at a time,
//!   based on average CPU utilization over the last 3 minutes
//!   (thresholds 50 % / 20 %). Scaling out takes 60 seconds, emulating
//!   real VM-creation latency.
//! * **scale-up / scale-down** — raise or lower the VMs' clock
//!   frequency, based on the last 30 seconds of utilization plus the
//!   Aperf/Pperf counters and Equation 1 (thresholds 40 % / 20 %),
//!   evaluated every 3 seconds across 8 frequency bins between B2
//!   (3.4 GHz) and OC1 (4.1 GHz).
//!
//! Three policies reproduce the paper's comparison (Table XI):
//! [`Policy::Baseline`] never changes frequency; [`Policy::OcE`]
//! overclocks to the top bin while a scale-out is in flight (hiding
//! VM-creation latency); [`Policy::OcA`] scales up *before* scaling
//! out, postponing or avoiding VM creations entirely ("scale up and
//! then out").
//!
//! # Example
//!
//! ```
//! use ic_autoscale::runner::{Runner, RunnerConfig, ramp_schedule};
//! use ic_autoscale::policy::Policy;
//!
//! // A short smoke run of the baseline policy.
//! let mut cfg = RunnerConfig::paper();
//! cfg.schedule = ramp_schedule(500.0, 1000.0, 500.0, 60.0);
//! let result = Runner::new(cfg, Policy::Baseline, 42).run();
//! assert!(result.completed > 0);
//! ```

pub mod asc;
pub mod policy;
pub mod runner;

pub use asc::AutoScaler;
pub use policy::{AscConfig, Policy};
pub use runner::{RunResult, Runner, RunnerConfig};
